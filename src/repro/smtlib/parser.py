"""Parser for SMT-LIB v2 scripts and terms.

This is the reproduction of the paper's "lightweight SMT-LIB v2 parser
... for getting free variables and assertions" (Section 3.4), grown into
a full structured parser: it builds typed ASTs, expands ``let`` binders
and ``define-fun`` macros eagerly, and validates sorts as it goes, so
everything downstream (fusion, solving, reduction) operates on
well-sorted terms.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import ParseError
from repro.smtlib import lexer
from repro.smtlib.ast import (
    Assert,
    CheckSat,
    DeclareFun,
    DefineFun,
    Exit,
    GetModel,
    Script,
    SetInfo,
    SetLogic,
    SetOption,
    mk_const,
    mk_quantifier,
    mk_var,
    substitute,
)
from repro.smtlib import theory as _theory
from repro.smtlib.sorts import BOOL, INT, REAL, STRING, sort_by_name
from repro.smtlib.typecheck import app, is_known_op


# ---------------------------------------------------------------------------
# S-expression layer
# ---------------------------------------------------------------------------


def _read_sexprs(tokens):
    """Group a token list into nested S-expressions.

    An S-expression is either a :class:`~repro.smtlib.lexer.Token` (atom)
    or a list of S-expressions.
    """
    exprs = []
    stack = [exprs]
    for tok in tokens:
        if tok.kind == lexer.LPAREN:
            new = []
            stack[-1].append(new)
            stack.append(new)
        elif tok.kind == lexer.RPAREN:
            stack.pop()
            if not stack:
                raise ParseError("unbalanced ')'", tok.line, tok.column)
        else:
            stack[-1].append(tok)
    if len(stack) != 1:
        raise ParseError("unbalanced '(' at end of input")
    return exprs


def _atom_text(sexpr):
    if isinstance(sexpr, lexer.Token):
        return sexpr.text
    return None


def _loc(sexpr):
    while isinstance(sexpr, list):
        if not sexpr:
            return None, None
        sexpr = sexpr[0]
    return sexpr.line, sexpr.column


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------

_NULLARY_REGEX = {"re.none", "re.all", "re.allchar", "re.nostr"}


class _Env:
    """Symbol environment: declared variables, macros, and bound names."""

    def __init__(self):
        self.variables = {}
        self.macros = {}

    def copy_with(self, extra_vars):
        env = _Env()
        env.variables = dict(self.variables)
        env.variables.update(extra_vars)
        env.macros = self.macros
        return env


def _parse_sort(sexpr):
    name = _atom_text(sexpr)
    if name is None:
        return _parse_indexed_sort(sexpr)
    try:
        return sort_by_name(name)
    except KeyError as exc:
        raise ParseError(str(exc), sexpr.line, sexpr.column) from exc


def _parse_indexed_sort(sexpr):
    """Parse an indexed sort family application like ``(_ BitVec 8)``."""
    if (
        isinstance(sexpr, list)
        and len(sexpr) >= 3
        and _atom_text(sexpr[0]) == "_"
    ):
        head = _atom_text(sexpr[1])
        if head is not None and _theory.is_indexed_sort_head(head):
            indices = []
            for part in sexpr[2:]:
                text = _atom_text(part)
                if text is None or not text.isdigit():
                    raise ParseError(
                        "indexed sort indices must be numerals", *_loc(sexpr)
                    )
                indices.append(int(text))
            try:
                return _theory.indexed_sort(head, indices)
            except (KeyError, ValueError) as exc:
                raise ParseError(str(exc), *_loc(sexpr)) from exc
    raise ParseError("expected a sort", *_loc(sexpr))


def _indexed_op_text(head):
    """The op spelling of an indexed-operator head like ``(_ extract 3 0)``,
    or ``None`` if the s-expression is not one."""
    if not (isinstance(head, list) and len(head) >= 2 and _atom_text(head[0]) == "_"):
        return None
    parts = [_atom_text(part) for part in head]
    if any(part is None for part in parts):
        return None
    op = f"({' '.join(parts)})"
    return op if is_known_op(op) else None


def _parse_term(sexpr, env):
    if isinstance(sexpr, lexer.Token):
        return _parse_atom(sexpr, env)
    if not sexpr:
        raise ParseError("empty application")
    head = sexpr[0]
    head_text = _atom_text(head)
    if head_text is None:
        op = _indexed_op_text(head)
        if op is None:
            raise ParseError("application head must be a symbol", *_loc(sexpr))
        args = [_parse_term(e, env) for e in sexpr[1:]]
        try:
            return app(op, *args)
        except Exception as exc:
            raise ParseError(str(exc), *_loc(sexpr)) from exc
    if head_text == "let":
        return _parse_let(sexpr, env)
    if head_text in ("forall", "exists"):
        return _parse_quantifier(sexpr, env)
    if head_text == "!":
        # Attributed term: keep the inner term, drop annotations.
        if len(sexpr) < 2:
            raise ParseError("malformed annotation", head.line, head.column)
        return _parse_term(sexpr[1], env)
    args = [_parse_term(e, env) for e in sexpr[1:]]
    if head_text in env.macros:
        return _expand_macro(env.macros[head_text], args, head)
    if not is_known_op(head_text):
        raise ParseError(f"unknown operator {head_text!r}", head.line, head.column)
    try:
        return app(head_text, *args)
    except Exception as exc:
        raise ParseError(str(exc), head.line, head.column) from exc


def _parse_atom(tok, env):
    if tok.kind == lexer.NUMERAL:
        return mk_const(int(tok.text), INT)
    if tok.kind == lexer.DECIMAL:
        whole, _, frac = tok.text.partition(".")
        denominator = 10 ** len(frac)
        return mk_const(Fraction(int(whole) * denominator + int(frac or 0), denominator), REAL)
    if tok.kind == lexer.STRING:
        return mk_const(tok.text, STRING)
    if tok.kind == lexer.SYMBOL:
        text = tok.text
        if text == "true":
            return mk_const(True, BOOL)
        if text == "false":
            return mk_const(False, BOOL)
        if text in env.variables:
            return env.variables[text]
        if text in env.macros:
            return _expand_macro(env.macros[text], [], tok)
        if text in _NULLARY_REGEX:
            return app("re.none" if text == "re.nostr" else text)
        const = _theory.parse_literal(text)
        if const is not None:
            # Theory-specific literal spellings (bitvector #b/#x).
            return const
        raise ParseError(f"undeclared symbol {text!r}", tok.line, tok.column)
    raise ParseError(f"unexpected token {tok.text!r}", tok.line, tok.column)


def _parse_let(sexpr, env):
    head = sexpr[0]
    if len(sexpr) != 3 or not isinstance(sexpr[1], list):
        raise ParseError("malformed let", head.line, head.column)
    bindings = {}
    for binding in sexpr[1]:
        if not (isinstance(binding, list) and len(binding) == 2):
            raise ParseError("malformed let binding", head.line, head.column)
        name = _atom_text(binding[0])
        if name is None:
            raise ParseError("let binding name must be a symbol", head.line, head.column)
        # Let bindings are simultaneous: right-hand sides see the outer env.
        bindings[name] = _parse_term(binding[1], env)
    inner = env.copy_with({name: mk_var(name, value.sort) for name, value in bindings.items()})
    body = _parse_term(sexpr[2], inner)
    # Expand the binder eagerly: substitute values for the bound names.
    mapping = {mk_var(name, value.sort): value for name, value in bindings.items()}
    return substitute(body, mapping)


def _parse_quantifier(sexpr, env):
    head = sexpr[0]
    if len(sexpr) != 3 or not isinstance(sexpr[1], list):
        raise ParseError(f"malformed {head.text}", head.line, head.column)
    bindings = []
    extra = {}
    for binding in sexpr[1]:
        if not (isinstance(binding, list) and len(binding) == 2):
            raise ParseError("malformed quantifier binding", head.line, head.column)
        name = _atom_text(binding[0])
        sort = _parse_sort(binding[1])
        bindings.append((name, sort))
        extra[name] = mk_var(name, sort)
    body = _parse_term(sexpr[2], env.copy_with(extra))
    if body.sort != BOOL:
        raise ParseError("quantifier body must be Bool", head.line, head.column)
    return mk_quantifier(head.text, tuple(bindings), body)


def _expand_macro(definition, args, head):
    if len(args) != len(definition.params):
        raise ParseError(
            f"macro {definition.name!r} expects {len(definition.params)} arguments",
            head.line,
            head.column,
        )
    mapping = {}
    for (name, sort), value in zip(definition.params, args):
        if value.sort != sort:
            raise ParseError(
                f"macro {definition.name!r}: argument sort mismatch", head.line, head.column
            )
        mapping[mk_var(name, sort)] = value
    return substitute(definition.body, mapping)


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def _attr_value_text(sexpr):
    if isinstance(sexpr, lexer.Token):
        return sexpr.text
    return " ".join(filter(None, (_attr_value_text(e) for e in sexpr)))


def _parse_command(sexpr, env):
    if not isinstance(sexpr, list) or not sexpr:
        raise ParseError("expected a command", *_loc(sexpr))
    head = sexpr[0]
    name = _atom_text(head)
    if name == "set-logic":
        return SetLogic(_atom_text(sexpr[1]))
    if name in ("set-info", "set-option"):
        keyword = _atom_text(sexpr[1])
        value = _attr_value_text(sexpr[2]) if len(sexpr) > 2 else ""
        cls = SetInfo if name == "set-info" else SetOption
        return cls(keyword, value)
    if name in ("declare-fun", "declare-const"):
        sym = _atom_text(sexpr[1])
        if name == "declare-fun":
            if len(sexpr) != 4 or not isinstance(sexpr[2], list):
                raise ParseError("malformed declare-fun", head.line, head.column)
            arg_sorts = tuple(_parse_sort(s) for s in sexpr[2])
            ret = _parse_sort(sexpr[3])
            const_syntax = False
        else:
            if len(sexpr) != 3:
                raise ParseError("malformed declare-const", head.line, head.column)
            arg_sorts = ()
            ret = _parse_sort(sexpr[2])
            const_syntax = True
        if arg_sorts:
            raise ParseError(
                "uninterpreted functions with arguments are not supported",
                head.line,
                head.column,
            )
        env.variables[sym] = mk_var(sym, ret)
        return DeclareFun(sym, arg_sorts, ret, const_syntax)
    if name == "define-fun":
        if len(sexpr) != 5 or not isinstance(sexpr[2], list):
            raise ParseError("malformed define-fun", head.line, head.column)
        sym = _atom_text(sexpr[1])
        params = []
        for binding in sexpr[2]:
            params.append((_atom_text(binding[0]), _parse_sort(binding[1])))
        ret = _parse_sort(sexpr[3])
        body_env = env.copy_with({p: mk_var(p, s) for p, s in params})
        body = _parse_term(sexpr[4], body_env)
        if body.sort != ret:
            raise ParseError(
                f"define-fun {sym!r}: body sort {body.sort} != declared {ret}",
                head.line,
                head.column,
            )
        definition = DefineFun(sym, tuple(params), ret, body)
        env.macros[sym] = definition
        return definition
    if name == "assert":
        if len(sexpr) != 2:
            raise ParseError("malformed assert", head.line, head.column)
        term = _parse_term(sexpr[1], env)
        if term.sort != BOOL:
            raise ParseError("asserted term must be Bool", head.line, head.column)
        return Assert(term)
    if name == "check-sat":
        return CheckSat()
    if name == "get-model":
        return GetModel()
    if name == "exit":
        return Exit()
    raise ParseError(f"unsupported command {name!r}", head.line, head.column)


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def parse_script(text):
    """Parse an SMT-LIB script into a :class:`~repro.smtlib.ast.Script`."""
    tokens = lexer.tokenize(text)
    sexprs = _read_sexprs(tokens)
    env = _Env()
    commands = [_parse_command(e, env) for e in sexprs]
    return Script(commands)


def parse_term(text, variables=()):
    """Parse a single term.

    ``variables`` is an iterable of :class:`~repro.smtlib.ast.Var` that
    may occur free in the term.
    """
    tokens = lexer.tokenize(text)
    sexprs = _read_sexprs(tokens)
    if len(sexprs) != 1:
        raise ParseError(f"expected exactly one term, got {len(sexprs)}")
    env = _Env()
    env.variables = {v.name: v for v in variables}
    return _parse_term(sexprs[0], env)
