"""Abstract syntax for SMT-LIB terms, commands, and scripts.

Terms are immutable, structurally hashable, and **hash-consed**: the
interning constructors :func:`mk_const`, :func:`mk_var`, :func:`mk_app`
and :func:`mk_quantifier` return the *same object* for structurally
equal terms built within one interning scope, so equality checks and
dict probes are usually resolved by identity. Every node carries
precomputed metadata — a cached structural hash, its AST node count and
depth — and lazily caches its free-variable set, which the iterative
DAG traversals below (:func:`substitute`, :func:`count_occurrences`,
:func:`free_vars`, :func:`map_terms`) use to visit shared subterms once
per operation instead of once per occurrence.

The intern table is thread-local and scoped by :func:`fresh_scope`
(alongside the gensym counter): each YinYang iteration gets a fresh
table that is dropped on exit, so memory stays bounded and worker
processes/threads never share mutable interning state. Client code
outside :mod:`repro.smtlib` must construct terms through the ``mk_*``
constructors (or the typechecked :func:`repro.smtlib.typecheck.app`) —
``tests/test_ast_lint.py`` enforces this.

The command set mirrors what the paper's lightweight parser supports:
``declare-fun`` / ``declare-const`` (zero-arity variables), ``define-fun``
(expanded as a macro at parse time), ``assert``, ``check-sat``, plus the
administrative commands needed to round-trip real benchmark scripts
(``set-logic``, ``set-info``, ``set-option``, ``get-model``, ``exit``).
"""

from __future__ import annotations

import contextlib
import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from fractions import Fraction

from repro.smtlib.sorts import BOOL, Sort

_EMPTY_FROZENSET = frozenset()


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term:
    """Base class for SMT-LIB terms. Instances are immutable.

    ``__hash__`` returns the structural hash precomputed at
    construction (recomputing the full recursive hash on every dict
    probe would defeat interning), and ``__eq__`` resolves by identity
    first — under interning, structurally equal terms built in the same
    scope *are* identical — falling back to an iterative structural
    comparison for cross-scope terms.

    Subclasses are hand-written rather than dataclasses: term
    construction is the hottest allocation path in fusion (every
    substitution rebuilds a spine of fresh nodes), and a plain
    ``__init__`` writing straight into ``__dict__`` is several times
    cheaper than the frozen-dataclass ``__setattr__`` dance.
    Immutability is still enforced: attribute assignment raises, and
    the lazy metadata caches go through ``object.__setattr__`` or
    direct ``__dict__`` writes.
    """

    __slots__ = ()

    sort: Sort

    def __setattr__(self, name, value):
        raise AttributeError(
            f"{self.__class__.__name__} is immutable (terms are interned)"
        )

    def __delattr__(self, name):
        raise AttributeError(
            f"{self.__class__.__name__} is immutable (terms are interned)"
        )

    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        if self is other:
            return True
        if not isinstance(other, Term):
            return NotImplemented
        if self._hash != other._hash:
            return False
        return _structurally_equal(self, other)

    def walk(self):
        """Yield this term and all subterms, preorder (tree view: a
        shared subterm is yielded once per occurrence)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, App):
                stack.extend(reversed(node.args))
            elif isinstance(node, Quantifier):
                stack.append(node.body)

    def __str__(self):
        from repro.smtlib.printer import print_term

        return print_term(self)


def _structurally_equal(a, b):
    """Iterative structural equality (no recursion-limit exposure)."""
    stack = [(a, b)]
    while stack:
        x, y = stack.pop()
        if x is y:
            continue
        cls = x.__class__
        if cls is not y.__class__ or x._hash != y._hash:
            return False
        if cls is App:
            if x.op != y.op or x.sort != y.sort or len(x.args) != len(y.args):
                return False
            stack.extend(zip(x.args, y.args))
        elif cls is Var:
            if x.name != y.name or x.sort != y.sort:
                return False
        elif cls is Const:
            if x.value != y.value or x.sort != y.sort:
                return False
        elif cls is Quantifier:
            if x.kind != y.kind or x.bindings != y.bindings:
                return False
            stack.append((x.body, y.body))
        else:  # pragma: no cover - no other Term subclasses exist
            if x != y:
                return False
    return True


class Const(Term):
    """A literal constant.

    ``value`` is a Python ``bool`` (Bool), ``int`` (Int),
    :class:`fractions.Fraction` (Real), or ``str`` (String).
    """

    node_count = 1
    depth = 1
    # Constants have no free variables — shared class-level empties keep
    # the broadly shared interned literals free of per-instance caches.
    _free = _EMPTY_FROZENSET
    _free_names = _EMPTY_FROZENSET
    _has_quant = False

    def __init__(self, value, sort):
        if sort.name == "Real" and isinstance(value, int):
            value = Fraction(value)
        d = self.__dict__
        d["value"] = value
        d["sort"] = sort
        # The hash deliberately omits the value's type: True == 1 in
        # Python, so equal values must keep equal hashes.
        d["_hash"] = hash((Const, value, sort))

    def __repr__(self):
        return f"Const(value={self.value!r}, sort={self.sort!r})"

    def __reduce__(self):
        return (mk_const, (self.value, self.sort))


class Var(Term):
    """A variable occurrence (free, or bound by an enclosing quantifier)."""

    node_count = 1
    depth = 1
    _has_quant = False

    def __init__(self, name, sort):
        d = self.__dict__
        d["name"] = name
        d["sort"] = sort
        d["_hash"] = hash((Var, name, sort))
        d["_free"] = frozenset((self,))
        d["_free_names"] = frozenset((name,))

    def __repr__(self):
        return f"Var(name={self.name!r}, sort={self.sort!r})"

    def __reduce__(self):
        return (mk_var, (self.name, self.sort))


class App(Term):
    """Application of an interpreted operator, e.g. ``(+ x 1)``."""

    def __init__(self, op, args, sort):
        if type(args) is not tuple:
            args = tuple(args)
        d = self.__dict__
        d["op"] = op
        d["args"] = args
        d["sort"] = sort
        count = 1
        depth = 0
        # One pass over the children computes size/depth, collects the
        # cached child hashes (reading ``_hash`` directly skips a Python
        # ``__hash__`` dispatch per child), and propagates the
        # free-*name* cache bottom-up when every child already carries
        # one (always true for freshly built spines — the fusion hot
        # path): an O(arity) frozenset union here replaces a full lazy
        # traversal later. The heavier free-var *node* set (``_free``)
        # stays lazy; only pruning needs names.
        hashes = [App, op, sort.name]
        names = _EMPTY_FROZENSET
        try:
            # Every interned term carries ``_free_names`` (class-level
            # empty on Const, set by every constructor otherwise), so
            # the plain attribute read never fails on mk_*-built trees.
            for a in args:
                count += a.node_count
                if a.depth > depth:
                    depth = a.depth
                hashes.append(a._hash)
                a_names = a._free_names
                if a_names:
                    names = a_names if not names else names | a_names
            d["_free_names"] = names
        except AttributeError:
            # Hand-built child without the cache: redo defensively and
            # leave the free-name set lazy.
            count = 1
            depth = 0
            del hashes[3:]
            for a in args:
                count += a.node_count
                if a.depth > depth:
                    depth = a.depth
                hashes.append(a._hash)
        d["_hash"] = hash(tuple(hashes))
        d["node_count"] = count
        d["depth"] = depth + 1

    def __repr__(self):
        return f"App(op={self.op!r}, args={self.args!r}, sort={self.sort!r})"

    def __reduce__(self):
        return (mk_app, (self.op, self.args, self.sort))


class Quantifier(Term):
    """A ``forall`` or ``exists`` binder over one or more sorted variables."""

    def __init__(self, kind, bindings, body):
        if kind not in ("forall", "exists"):
            raise ValueError(f"bad quantifier kind: {kind!r}")
        if type(bindings) is not tuple:
            bindings = tuple(tuple(b) for b in bindings)
        d = self.__dict__
        d["kind"] = kind
        d["bindings"] = bindings
        d["body"] = body
        d["_hash"] = hash((Quantifier, kind, bindings, body))
        d["node_count"] = 1 + body.node_count
        d["depth"] = 1 + body.depth
        bound = frozenset(name for name, _ in bindings)
        d["_bound_names"] = bound
        body_names = getattr(body, "_free_names", None)
        if body_names is not None:
            d["_free_names"] = body_names - bound if body_names else body_names

    @property
    def sort(self):
        return BOOL

    @property
    def bound_names(self):
        return self._bound_names

    def __repr__(self):
        return (
            f"Quantifier(kind={self.kind!r}, bindings={self.bindings!r}, "
            f"body={self.body!r})"
        )

    def __reduce__(self):
        return (mk_quantifier, (self.kind, self.bindings, self.body))


# ---------------------------------------------------------------------------
# Interning (hash-consing)
# ---------------------------------------------------------------------------

# The intern tables are thread-local for the same reason the gensym
# counter is (see below): YinYang's thread mode builds formulas
# concurrently, and process-global tables would need locking and would
# let one thread's allocations retain another thread's garbage. Worker
# processes (spawn) start with clean tables. One table per node class
# keeps the keys small (no class marker to hash on every lookup).
_INTERN_STATE = threading.local()

_TABLE_NAMES = ("consts", "vars", "apps", "apps_exact", "quants")

_CONST_SINGLETONS = {}  # const intern-key -> term; seeded into every scope


def _fresh_tables(state):
    state["consts"] = dict(_CONST_SINGLETONS)
    state["vars"] = {}
    state["apps"] = {}
    state["apps_exact"] = {}
    state["quants"] = {}


def _intern_state():
    state = _INTERN_STATE.__dict__
    if "consts" not in state:
        _fresh_tables(state)
        state["hits"] = 0
        state["misses"] = 0
    return state


def mk_const(value, sort):
    """Interning constructor for :class:`Const`."""
    if sort.name == "Real" and isinstance(value, int):
        value = Fraction(value)
    # The key keeps the value's type (unlike the hash): True and 1 are
    # equal, but interning must not collapse a Bool-valued constant
    # with an Int-valued one. Sorts are identified by their name (a
    # string with a C-cached hash) to keep key hashing cheap.
    key = (value.__class__, value, sort.name)
    state = _INTERN_STATE.__dict__
    try:
        table = state["consts"]
    except KeyError:
        table = _intern_state()["consts"]
    term = table.get(key)
    if term is None:
        state["misses"] += 1
        term = table[key] = Const(value, sort)
    else:
        state["hits"] += 1
    return term


def mk_var(name, sort):
    """Interning constructor for :class:`Var`."""
    key = (name, sort.name)
    state = _INTERN_STATE.__dict__
    try:
        table = state["vars"]
    except KeyError:
        table = _intern_state()["vars"]
    term = table.get(key)
    if term is None:
        state["misses"] += 1
        term = table[key] = Var(name, sort)
    else:
        state["hits"] += 1
    return term


def mk_app(op, args, sort):
    """Interning constructor for :class:`App` (no sort checking — use
    :func:`repro.smtlib.typecheck.app` to build checked applications).

    The probe key carries the children's cached structural hashes (plain
    ints, hashed in C) instead of the child terms, so a lookup never
    dispatches a Python ``__hash__`` per argument. A key hit is verified
    against the stored term's actual argument tuple (identity-fast for
    interned children); the astronomically rare verified mismatch — a
    64-bit child-hash collision — falls back to an exact-key table so
    interning stays canonical even then.
    """
    if type(args) is not tuple:
        args = tuple(args)
    sortname = sort.name
    n = len(args)
    if n == 2:
        key = (op, sortname, args[0]._hash, args[1]._hash)
    elif n == 1:
        key = (op, sortname, args[0]._hash)
    else:
        key = (op, sortname, *[a._hash for a in args])
    state = _INTERN_STATE.__dict__
    try:
        table = state["apps"]
    except KeyError:
        table = _intern_state()["apps"]
    term = table.get(key)
    if term is not None:
        if term.args == args:
            state["hits"] += 1
            return term
        exact = state["apps_exact"]
        ekey = (op, args, sortname)
        term = exact.get(ekey)
        if term is not None:
            state["hits"] += 1
            return term
        state["misses"] += 1
        term = exact[ekey] = App(op, args, sort)
        return term
    state["misses"] += 1
    term = table[key] = App(op, args, sort)
    return term


def mk_quantifier(kind, bindings, body):
    """Interning constructor for :class:`Quantifier`."""
    if type(bindings) is not tuple:
        bindings = tuple(tuple(b) for b in bindings)
    key = (kind, bindings, body)
    state = _INTERN_STATE.__dict__
    try:
        table = state["quants"]
    except KeyError:
        table = _intern_state()["quants"]
    term = table.get(key)
    if term is None:
        state["misses"] += 1
        term = table[key] = Quantifier(kind, bindings, body)
    else:
        state["hits"] += 1
    return term


def intern_stats():
    """Hit/miss counters and table size for the current thread's scope."""
    state = _intern_state()
    return {
        "hits": state["hits"],
        "misses": state["misses"],
        "size": sum(len(state[name]) for name in _TABLE_NAMES),
    }


def reset_intern_stats():
    state = _intern_state()
    state["hits"] = 0
    state["misses"] = 0


TRUE = Const(True, BOOL)
FALSE = Const(False, BOOL)
_CONST_SINGLETONS[(bool, True, "Bool")] = TRUE
_CONST_SINGLETONS[(bool, False, "Bool")] = FALSE


# ---------------------------------------------------------------------------
# Term utilities
# ---------------------------------------------------------------------------


def _free_set(term):
    """The frozenset of free :class:`Var` nodes of ``term``, cached on
    every visited node (iterative post-order over the shared DAG)."""
    cached = getattr(term, "_free", None)
    if cached is not None:
        return cached
    stack = [term]
    while stack:
        node = stack[-1]
        if getattr(node, "_free", None) is not None:
            stack.pop()
            continue
        cls = node.__class__
        if cls is Var:
            object.__setattr__(node, "_free", frozenset((node,)))
            stack.pop()
        elif cls is Const:
            object.__setattr__(node, "_free", _EMPTY_FROZENSET)
            stack.pop()
        elif cls is App:
            pending = [a for a in node.args if getattr(a, "_free", None) is None]
            if pending:
                stack.extend(pending)
                continue
            if not node.args:
                result = _EMPTY_FROZENSET
            elif len(node.args) == 1:
                result = node.args[0]._free
            else:
                result = frozenset().union(*(a._free for a in node.args))
            object.__setattr__(node, "_free", result)
            stack.pop()
        else:  # Quantifier
            body = node.body
            if getattr(body, "_free", None) is None:
                stack.append(body)
                continue
            bound = node.bound_names
            result = frozenset(v for v in body._free if v.name not in bound)
            object.__setattr__(node, "_free", result)
            stack.pop()
    return term._free


def free_vars(term):
    """Return the set of free :class:`Var` nodes of ``term``.

    Two occurrences of the same variable compare equal, so the result has
    one entry per distinct free variable.
    """
    return set(_free_set(term))


def free_names(term):
    """The frozenset of free variable *names* of ``term`` (cached)."""
    names = getattr(term, "_free_names", None)
    if names is None:
        names = frozenset(v.name for v in _free_set(term))
        object.__setattr__(term, "_free_names", names)
    return names


def occurrence_counts(term, var):
    """Free-occurrence count of ``var`` in ``term``, cached **per node**.

    Each visited node that can contain ``var`` stores a ``(var, count)``
    entry in its ``_occ`` dict, keyed by the variable's *name*: names
    are strings whose hash is computed in C (no per-probe Python
    ``__hash__`` dispatch, unlike Term keys), and the stored variable
    disambiguates the pathological same-name-different-sort case on
    lookup. Repeated probes — fusion counts occurrences of the same
    seed variables in the same seed asserts on every iteration — cost
    one dict hit after the first walk, and a substituted assert only
    recomputes its rebuilt spine. Nodes whose cached free-name set
    excludes ``var`` are pruned in O(1) and store nothing (long-lived
    shared constants stay lean).
    """
    name = var.name
    occ = term.__dict__.get("_occ")
    if occ is not None:
        entry = occ.get(name)
        if entry is not None and (entry[0] is var or entry[0] == var):
            return entry[1]
    term_names = term.__dict__.get("_free_names")
    if term_names is None:
        term_names = free_names(term)
    if name not in term_names:
        # Covers Const and shadowing quantifiers too: not free => 0.
        return 0
    stack = [term]
    while stack:
        node = stack[-1]
        d = node.__dict__
        occ = d.get("_occ")
        if occ is not None:
            entry = occ.get(name)
            if entry is not None and (entry[0] is var or entry[0] == var):
                stack.pop()
                continue
        cls = node.__class__
        if cls is Var:
            if occ is None:
                occ = d["_occ"] = {}
            occ[name] = (var, 1 if node == var else 0)
            stack.pop()
        elif cls is App:
            ready = True
            for a in node.args:
                names = a.__dict__.get("_free_names")
                if names is None:
                    names = free_names(a)
                if name not in names:
                    continue  # pruned: cannot contain var
                aocc = a.__dict__.get("_occ")
                if aocc is not None:
                    entry = aocc.get(name)
                    if entry is not None and (entry[0] is var or entry[0] == var):
                        continue
                if ready:
                    ready = False
                stack.append(a)
            if not ready:
                continue
            total = 0
            for a in node.args:
                aocc = a.__dict__.get("_occ")
                if aocc is not None:
                    entry = aocc.get(name)
                    if entry is not None and (entry[0] is var or entry[0] == var):
                        total += entry[1]
            if occ is None:
                occ = d["_occ"] = {}
            occ[name] = (var, total)
            stack.pop()
        else:  # Quantifier, not shadowing (name free here => free in body)
            body = node.body
            bocc = body.__dict__.get("_occ")
            entry = bocc.get(name) if bocc is not None else None
            if entry is None or (entry[0] is not var and entry[0] != var):
                stack.append(body)
                continue
            if occ is None:
                occ = d["_occ"] = {}
            occ[name] = (var, entry[1])
            stack.pop()
    return term.__dict__["_occ"][name][1]


def count_occurrences(term, var):
    """Count free occurrences of variable ``var`` in ``term``."""
    return occurrence_counts(term, var)


def _occ_count(node, var):
    """Cached count for a node already visited by :func:`occurrence_counts`
    (0 for nodes it pruned, which never stored an entry)."""
    occ = node.__dict__.get("_occ")
    if occ is None:
        return 0
    entry = occ.get(var.name)
    if entry is not None and (entry[0] is var or entry[0] == var):
        return entry[1]
    return 0


# Depth below which traversals may recurse: far under CPython's
# recursion limit (with headroom for the interpreter frames above), yet
# far above anything a real seed or fused formula exhibits.
_RECURSION_SAFE_DEPTH = 200


def _substitute_selected_rec(node, var, name, replacement, selected, start):
    """Recursive fast path of :func:`substitute_selected_occurrences`
    (native call frames beat an explicit stack on shallow terms).

    Precondition: ``node`` contains at least one *selected* occurrence
    — callers prune out-of-range subtrees before recursing, so no call
    frame is ever spent on an untouched child. ``name`` is ``var.name``,
    threaded through to keep the per-node ``_occ`` probes attribute-free.
    """
    cls = node.__class__
    if cls is Var:  # its single occurrence index is selected
        return replacement
    if cls is App:
        new_args = None
        offset = start
        n_sel = len(selected)
        for i, a in enumerate(node.args):
            aocc = a.__dict__.get("_occ")
            if aocc is None:
                continue
            entry = aocc.get(name)
            if entry is None or (entry[0] is not var and entry[0] != var):
                continue
            cnt = entry[1]
            if cnt:
                lo = bisect_left(selected, offset)
                if lo < n_sel and selected[lo] < offset + cnt:
                    if new_args is None:
                        new_args = list(node.args)
                    new_args[i] = _substitute_selected_rec(
                        a, var, name, replacement, selected, offset
                    )
                offset += cnt
        if new_args is None:
            return node
        return mk_app(node.op, tuple(new_args), node.sort)
    # Quantifier: its occurrence range equals its body's, so the body
    # holds the selected occurrence the precondition guarantees.
    body = _substitute_selected_rec(node.body, var, name, replacement, selected, start)
    return mk_quantifier(node.kind, node.bindings, body)


def substitute_selected_occurrences(term, var, replacement, selected):
    """Replace the free occurrences of ``var`` whose left-to-right index
    (0-based) is in ``selected`` (a sorted list). Requires a preceding
    :func:`occurrence_counts` walk (its per-node ``_occ`` caches drive
    the pruning here).

    Shallow terms take a recursive fast path; anything deeper than
    ``_RECURSION_SAFE_DEPTH`` falls back to the explicit-stack version
    (safe for ~10k-deep formulas). Both prune every subtree whose
    occurrence-index range contains no selected index in O(log n).
    """
    if term.depth <= _RECURSION_SAFE_DEPTH:
        cnt = _occ_count(term, var)
        if cnt == 0:
            return term
        lo = bisect_left(selected, 0)
        if lo >= len(selected) or selected[lo] >= cnt:
            return term  # no selected occurrence in range
        return _substitute_selected_rec(term, var, var.name, replacement, selected, 0)
    EXPAND, REDUCE = 0, 1
    stack = [(EXPAND, term, 0)]
    out = []
    while stack:
        phase, node, start = stack.pop()
        if phase == REDUCE:
            if node.__class__ is App:
                n = len(node.args)
                new_args = tuple(out[-n:])
                del out[-n:]
                if new_args == node.args:
                    out.append(node)
                else:
                    out.append(mk_app(node.op, new_args, node.sort))
            else:  # Quantifier
                body = out.pop()
                if body is node.body:
                    out.append(node)
                else:
                    out.append(mk_quantifier(node.kind, node.bindings, body))
            continue
        cnt = _occ_count(node, var)
        if cnt == 0:
            out.append(node)
            continue
        lo = bisect_left(selected, start)
        if lo >= len(selected) or selected[lo] >= start + cnt:
            out.append(node)  # no selected occurrence below this node
            continue
        cls = node.__class__
        if cls is Var:  # cnt == 1 and its index is selected
            out.append(replacement)
        elif cls is App:
            stack.append((REDUCE, node, 0))
            offset = start
            children = []
            for a in node.args:
                children.append((a, offset))
                offset += _occ_count(a, var)
            for a, child_start in reversed(children):
                stack.append((EXPAND, a, child_start))
        else:  # Quantifier; cnt > 0 means it does not shadow var
            stack.append((REDUCE, node, 0))
            stack.append((EXPAND, node.body, start))
    return out[0]


# The fresh-name counter is thread-local: YinYang's thread mode builds
# formulas concurrently, and a process-global counter would make the
# names one thread draws depend on what every other thread has done so
# far (a gensym race that breaks shard-count determinism). Each thread
# lazily gets its own counter; worker processes (spawn) start clean.
# The counter is a plain int (not itertools.count) so callers can
# observe and replay draw positions — the fusion layer's renamed-view
# cache needs both.
_FRESH_STATE = threading.local()


def fresh_name(prefix="fv"):
    """Return a symbol name that is fresh within the current thread's
    fresh-name scope (see :func:`fresh_scope`)."""
    state = _FRESH_STATE
    n = getattr(state, "value", 0)
    state.value = n + 1
    return f"{prefix}!{n}"


def fresh_name_position():
    """Number of fresh names drawn so far in the current thread's scope.

    The names :func:`fresh_name` will produce are a pure function of
    this position, which is what makes cached artifacts that embed
    fresh names (e.g. fusion's renamed seed views) replayable."""
    return getattr(_FRESH_STATE, "value", 0)


def skip_fresh_names(n):
    """Advance the gensym counter by ``n`` draws without building the
    names — used when replaying a cached computation that drew ``n``
    fresh names, so subsequent draws match the uncached run exactly."""
    if n:
        _FRESH_STATE.value = getattr(_FRESH_STATE, "value", 0) + n


@contextlib.contextmanager
def fresh_scope(start=0):
    """Scope the fresh-name counter *and* the intern table: reset both
    on entry, restore the outer ones on exit.

    Fresh names only need to be unique within one formula's
    construction; a longer-lived counter otherwise makes generated
    scripts depend on everything the thread did before. The YinYang
    loop wraps each iteration in a scope, so a fused script is a pure
    function of ``(campaign seed, cell, iteration index)`` — the
    property that journal resume and process-sharded execution rely on
    (any shard can rebuild any iteration bit-for-bit).

    The intern table rides along for the complementary reason: terms
    built during one iteration are garbage after it, and scoping the
    table bounds its size by the largest single iteration instead of
    the whole campaign. Interning never affects printed output — terms
    from an outer scope (e.g. cached parsed seeds) remain valid inside
    the scope; equal terms from different scopes are merely ``==``
    rather than identical.

    The counter and table (and therefore the scope) are per-thread:
    entering a scope in one worker thread never perturbs names drawn —
    or terms interned — by another.
    """
    saved_value = getattr(_FRESH_STATE, "value", 0)
    state = _intern_state()
    saved_tables = {name: state[name] for name in _TABLE_NAMES}
    _FRESH_STATE.value = start
    _fresh_tables(state)
    try:
        yield
    finally:
        _FRESH_STATE.value = saved_value
        state.update(saved_tables)


def substitute(term, mapping):
    """Capture-avoiding simultaneous substitution of free variables.

    ``mapping`` maps :class:`Var` nodes to replacement terms. Bound
    variables that would capture a free variable of a replacement term
    are alpha-renamed.
    """
    if not mapping:
        return term
    mapping = dict(mapping)
    return _substitute(term, mapping, frozenset(v.name for v in mapping))


def _substitute(term, mapping, names):
    """Iterative DAG substitution with an identity-keyed memo table.

    Shared subterms are rewritten once; subtrees whose free names are
    disjoint from the mapping are returned unchanged in O(1). Binders
    are handled out-of-line (recursing once per nested quantifier under
    substitution — binder nesting is shallow in practice).
    """
    memo = {}
    stack = [term]
    while stack:
        node = stack[-1]
        nid = id(node)
        if nid in memo:
            stack.pop()
            continue
        node_names = node.__dict__.get("_free_names")
        if node_names is None:
            node_names = free_names(node)
        if names.isdisjoint(node_names):
            memo[nid] = node
            stack.pop()
            continue
        cls = node.__class__
        if cls is Var:
            memo[nid] = mapping.get(node, node)
            stack.pop()
        elif cls is App:
            pending = [a for a in node.args if id(a) not in memo]
            if pending:
                stack.extend(pending)
                continue
            new_args = tuple(memo[id(a)] for a in node.args)
            if new_args == node.args:
                memo[nid] = node
            else:
                memo[nid] = mk_app(node.op, new_args, node.sort)
            stack.pop()
        else:  # Quantifier (Const is always pruned above: no free names)
            memo[nid] = _substitute_quantifier(node, mapping)
            stack.pop()
    return memo[id(term)]


def _substitute_quantifier(term, mapping):
    live = {v: e for v, e in mapping.items() if v.name not in term.bound_names}
    if not live:
        return term
    replacement_frees = set()
    for repl in live.values():
        replacement_frees |= free_names(repl)
    bindings = []
    renames = {}
    for name, sort in term.bindings:
        if name in replacement_frees:
            new = fresh_name(name)
            renames[mk_var(name, sort)] = mk_var(new, sort)
            bindings.append((new, sort))
        else:
            bindings.append((name, sort))
    body = term.body
    if renames:
        body = _substitute(body, renames, frozenset(v.name for v in renames))
    return mk_quantifier(
        term.kind,
        tuple(bindings),
        _substitute(body, live, frozenset(v.name for v in live)),
    )


def map_terms(term, fn, descend_quantifiers=True):
    """Bottom-up rewrite driver: rebuild ``term`` iteratively over the
    shared DAG, applying ``fn`` to every node *after* its children have
    been rewritten (the node passed to ``fn`` already carries the new
    children). Identity-keyed memoization rewrites each shared subterm
    once. With ``descend_quantifiers=False``, binders (and everything
    below them) are passed to ``fn`` unvisited.
    """
    memo = {}
    stack = [term]
    while stack:
        node = stack[-1]
        nid = id(node)
        if nid in memo:
            stack.pop()
            continue
        cls = node.__class__
        if cls is App:
            # Reversed push → children are rewritten left-to-right, so a
            # side-effecting ``fn`` (fresh names, collected constraints)
            # observes the same order as the old recursive rewrites.
            pending = [a for a in node.args if id(a) not in memo]
            if pending:
                stack.extend(reversed(pending))
                continue
            new_args = tuple(memo[id(a)] for a in node.args)
            if new_args == node.args:
                rebuilt = node
            else:
                rebuilt = mk_app(node.op, new_args, node.sort)
            memo[nid] = fn(rebuilt)
            stack.pop()
        elif cls is Quantifier and descend_quantifiers:
            body = node.body
            if id(body) not in memo:
                stack.append(body)
                continue
            new_body = memo[id(body)]
            if new_body is body:
                rebuilt = node
            else:
                rebuilt = mk_quantifier(node.kind, node.bindings, new_body)
            memo[nid] = fn(rebuilt)
            stack.pop()
        else:
            memo[nid] = fn(node)
            stack.pop()
    return memo[id(term)]


def has_quantifier(term):
    """True if any :class:`Quantifier` occurs in ``term`` (cached)."""
    cached = getattr(term, "_has_quant", None)
    if cached is not None:
        return cached
    stack = [term]
    while stack:
        node = stack[-1]
        if getattr(node, "_has_quant", None) is not None:
            stack.pop()
            continue
        cls = node.__class__
        if cls is Quantifier:
            object.__setattr__(node, "_has_quant", True)
            stack.pop()
        elif cls is App:
            pending = [
                a for a in node.args if getattr(a, "_has_quant", None) is None
            ]
            if pending:
                stack.extend(pending)
                continue
            object.__setattr__(
                node, "_has_quant", any(a._has_quant for a in node.args)
            )
            stack.pop()
        else:
            object.__setattr__(node, "_has_quant", False)
            stack.pop()
    return term._has_quant


def term_size(term):
    """Number of AST nodes in ``term`` (tree view, precomputed)."""
    return term.node_count


def term_depth(term):
    """Height of the term's AST (a leaf has depth 1; precomputed)."""
    return term.depth


def collect_ops(term):
    """Return the multiset-free set of operator names appearing in ``term``."""
    return {node.op for node in term.walk() if isinstance(node, App)}


# ---------------------------------------------------------------------------
# Commands and scripts
# ---------------------------------------------------------------------------


class Command:
    """Base class for SMT-LIB script commands."""

    __slots__ = ()


@dataclass(frozen=True)
class SetLogic(Command):
    logic: str


@dataclass(frozen=True)
class SetInfo(Command):
    keyword: str
    value: str


@dataclass(frozen=True)
class SetOption(Command):
    keyword: str
    value: str


@dataclass(frozen=True)
class DeclareFun(Command):
    """``declare-fun``/``declare-const``; only zero-arity (variables) here."""

    name: str
    arg_sorts: tuple
    return_sort: Sort
    const_syntax: bool = False  # printed as declare-const when True

    def __post_init__(self):
        if not isinstance(self.arg_sorts, tuple):
            object.__setattr__(self, "arg_sorts", tuple(self.arg_sorts))


@dataclass(frozen=True)
class DefineFun(Command):
    """A macro definition; applications are expanded at parse time."""

    name: str
    params: tuple  # tuple[(name, Sort), ...]
    return_sort: Sort
    body: Term

    def __post_init__(self):
        if not isinstance(self.params, tuple):
            object.__setattr__(self, "params", tuple(self.params))


@dataclass(frozen=True)
class Assert(Command):
    term: Term


@dataclass(frozen=True)
class CheckSat(Command):
    pass


@dataclass(frozen=True)
class GetModel(Command):
    pass


@dataclass(frozen=True)
class Exit(Command):
    pass


@dataclass
class Script:
    """An SMT-LIB script: an ordered list of commands.

    Provides the views YinYang needs: declared variables, assertion
    terms, and the conjunction of all assertions.
    """

    commands: list = field(default_factory=list)

    @property
    def logic(self):
        """The declared logic name, or ``None`` if no ``set-logic``."""
        for cmd in self.commands:
            if isinstance(cmd, SetLogic):
                return cmd.logic
        return None

    @property
    def declarations(self):
        """Mapping from declared variable name to :class:`Var` (arity 0 only).

        Cached against the identity of the current command objects
        (seed scripts are probed on every fusion); a fresh dict is
        returned each call so callers may mutate their copy.
        """
        commands = self.commands
        cached = getattr(self, "_decls_cache", None)
        if cached is not None:
            prev, result = cached
            # List equality short-circuits on element identity in C; a
            # rebuilt-but-equal command yields the same view anyway.
            if prev == commands:
                return dict(result)
        result = {}
        for cmd in commands:
            if isinstance(cmd, DeclareFun) and not cmd.arg_sorts:
                result[cmd.name] = mk_var(cmd.name, cmd.return_sort)
        self._decls_cache = (list(commands), result)
        return dict(result)

    @property
    def asserts(self):
        """The asserted terms, in script order."""
        return [cmd.term for cmd in self.commands if isinstance(cmd, Assert)]

    def conjunction(self):
        """The conjunction of all assertions (``true`` if none)."""
        terms = self.asserts
        if not terms:
            return TRUE
        if len(terms) == 1:
            return terms[0]
        return mk_app("and", tuple(terms), BOOL)

    def free_variables(self):
        """Free variables of all assertions, in deterministic order.

        Cached against the identity of the current assert terms: seed
        scripts are probed on every fusion, and their asserts never
        change. The cache holds references to the terms it was computed
        from, so an in-place edit of ``commands`` is detected by the
        identity comparison (no id-recycling hazard).
        """
        asserts = self.asserts
        cached = getattr(self, "_free_vars_cache", None)
        if cached is not None:
            prev, result = cached
            # Identity-shortcut list equality; equal terms have equal
            # free variables, so a structural match is just as valid.
            if prev == asserts:
                return list(result)
        seen = {}
        for term in asserts:
            for var in sorted(_free_set(term), key=lambda v: v.name):
                seen.setdefault(var.name, var)
        result = list(seen.values())
        self._free_vars_cache = (asserts, result)
        return list(result)

    def with_asserts(self, new_asserts):
        """Copy of this script with the assert commands replaced."""
        commands = []
        inserted = False
        for cmd in self.commands:
            if isinstance(cmd, Assert):
                if not inserted:
                    commands.extend(Assert(t) for t in new_asserts)
                    inserted = True
            else:
                commands.append(cmd)
        if not inserted:
            insert_at = len(commands)
            for i, cmd in enumerate(commands):
                if isinstance(cmd, (CheckSat, GetModel, Exit)):
                    insert_at = i
                    break
            commands[insert_at:insert_at] = [Assert(t) for t in new_asserts]
        return Script(commands)

    def __str__(self):
        from repro.smtlib.printer import print_script

        return print_script(self)
