"""Abstract syntax for SMT-LIB terms, commands, and scripts.

Terms are immutable and structurally hashable. Every term node carries
its sort; the smart constructors in :mod:`repro.smtlib.typecheck` infer
sorts, so client code rarely constructs nodes directly.

The command set mirrors what the paper's lightweight parser supports:
``declare-fun`` / ``declare-const`` (zero-arity variables), ``define-fun``
(expanded as a macro at parse time), ``assert``, ``check-sat``, plus the
administrative commands needed to round-trip real benchmark scripts
(``set-logic``, ``set-info``, ``set-option``, ``get-model``, ``exit``).
"""

from __future__ import annotations

import contextlib
import itertools
import threading
from dataclasses import dataclass, field
from fractions import Fraction

from repro.smtlib.sorts import BOOL, Sort


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term:
    """Base class for SMT-LIB terms. Instances are immutable."""

    __slots__ = ()

    sort: Sort

    def walk(self):
        """Yield this term and all subterms, preorder."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, App):
                stack.extend(reversed(node.args))
            elif isinstance(node, Quantifier):
                stack.append(node.body)

    def __str__(self):
        from repro.smtlib.printer import print_term

        return print_term(self)


@dataclass(frozen=True)
class Const(Term):
    """A literal constant.

    ``value`` is a Python ``bool`` (Bool), ``int`` (Int),
    :class:`fractions.Fraction` (Real), or ``str`` (String).
    """

    value: object
    sort: Sort

    def __post_init__(self):
        if self.sort.name == "Real" and isinstance(self.value, int):
            object.__setattr__(self, "value", Fraction(self.value))


@dataclass(frozen=True)
class Var(Term):
    """A variable occurrence (free, or bound by an enclosing quantifier)."""

    name: str
    sort: Sort


@dataclass(frozen=True)
class App(Term):
    """Application of an interpreted operator, e.g. ``(+ x 1)``."""

    op: str
    args: tuple
    sort: Sort

    def __post_init__(self):
        if not isinstance(self.args, tuple):
            object.__setattr__(self, "args", tuple(self.args))


@dataclass(frozen=True)
class Quantifier(Term):
    """A ``forall`` or ``exists`` binder over one or more sorted variables."""

    kind: str  # "forall" | "exists"
    bindings: tuple  # tuple[(name, Sort), ...]
    body: Term

    def __post_init__(self):
        if not isinstance(self.bindings, tuple):
            object.__setattr__(self, "bindings", tuple(self.bindings))
        if self.kind not in ("forall", "exists"):
            raise ValueError(f"bad quantifier kind: {self.kind!r}")

    @property
    def sort(self):
        return BOOL

    @property
    def bound_names(self):
        return frozenset(name for name, _ in self.bindings)


TRUE = Const(True, BOOL)
FALSE = Const(False, BOOL)


# ---------------------------------------------------------------------------
# Term utilities
# ---------------------------------------------------------------------------


def free_vars(term):
    """Return the set of free :class:`Var` nodes of ``term``.

    Two occurrences of the same variable compare equal, so the result has
    one entry per distinct free variable.
    """
    result = set()
    _free_vars_into(term, frozenset(), result)
    return result


def _free_vars_into(term, bound, result):
    if isinstance(term, Var):
        if term.name not in bound:
            result.add(term)
    elif isinstance(term, App):
        for arg in term.args:
            _free_vars_into(arg, bound, result)
    elif isinstance(term, Quantifier):
        _free_vars_into(term.body, bound | term.bound_names, result)


def count_occurrences(term, var):
    """Count free occurrences of variable ``var`` in ``term``."""
    if isinstance(term, Var):
        return 1 if term == var else 0
    if isinstance(term, App):
        return sum(count_occurrences(arg, var) for arg in term.args)
    if isinstance(term, Quantifier):
        if var.name in term.bound_names:
            return 0
        return count_occurrences(term.body, var)
    return 0


# The fresh-name counter is thread-local: YinYang's thread mode builds
# formulas concurrently, and a process-global counter would make the
# names one thread draws depend on what every other thread has done so
# far (a gensym race that breaks shard-count determinism). Each thread
# lazily gets its own counter; worker processes (spawn) start clean.
_FRESH_STATE = threading.local()


def _fresh_counter():
    counter = getattr(_FRESH_STATE, "counter", None)
    if counter is None:
        counter = _FRESH_STATE.counter = itertools.count()
    return counter


def fresh_name(prefix="fv"):
    """Return a symbol name that is fresh within the current thread's
    fresh-name scope (see :func:`fresh_scope`)."""
    return f"{prefix}!{next(_fresh_counter())}"


@contextlib.contextmanager
def fresh_scope(start=0):
    """Scope the fresh-name counter: reset to ``start`` on entry,
    restore the outer counter on exit.

    Fresh names only need to be unique within one formula's
    construction; a longer-lived counter otherwise makes generated
    scripts depend on everything the thread did before. The YinYang
    loop wraps each iteration in a scope, so a fused script is a pure
    function of ``(campaign seed, cell, iteration index)`` — the
    property that journal resume and process-sharded execution rely on
    (any shard can rebuild any iteration bit-for-bit).

    The counter (and therefore the scope) is per-thread: entering a
    scope in one worker thread never perturbs names drawn by another.
    """
    saved = _fresh_counter()  # materialize so the outer scope resumes, not resets
    _FRESH_STATE.counter = itertools.count(start)
    try:
        yield
    finally:
        _FRESH_STATE.counter = saved


def substitute(term, mapping):
    """Capture-avoiding simultaneous substitution of free variables.

    ``mapping`` maps :class:`Var` nodes to replacement terms. Bound
    variables that would capture a free variable of a replacement term
    are alpha-renamed.
    """
    if not mapping:
        return term
    return _substitute(term, dict(mapping))


def _substitute(term, mapping):
    if isinstance(term, Var):
        return mapping.get(term, term)
    if isinstance(term, Const):
        return term
    if isinstance(term, App):
        new_args = tuple(_substitute(arg, mapping) for arg in term.args)
        if new_args == term.args:
            return term
        return App(term.op, new_args, term.sort)
    if isinstance(term, Quantifier):
        live = {v: e for v, e in mapping.items() if v.name not in term.bound_names}
        if not live:
            return term
        replacement_frees = set()
        for repl in live.values():
            replacement_frees |= {v.name for v in free_vars(repl)}
        bindings = []
        renames = {}
        for name, sort in term.bindings:
            if name in replacement_frees:
                new = fresh_name(name)
                renames[Var(name, sort)] = Var(new, sort)
                bindings.append((new, sort))
            else:
                bindings.append((name, sort))
        body = term.body
        if renames:
            body = _substitute(body, renames)
        return Quantifier(term.kind, tuple(bindings), _substitute(body, live))
    raise TypeError(f"not a term: {term!r}")


def term_size(term):
    """Number of AST nodes in ``term``."""
    return sum(1 for _ in term.walk())


def term_depth(term):
    """Height of the term's AST (a leaf has depth 1)."""
    if isinstance(term, App):
        return 1 + max((term_depth(a) for a in term.args), default=0)
    if isinstance(term, Quantifier):
        return 1 + term_depth(term.body)
    return 1


def collect_ops(term):
    """Return the multiset-free set of operator names appearing in ``term``."""
    return {node.op for node in term.walk() if isinstance(node, App)}


# ---------------------------------------------------------------------------
# Commands and scripts
# ---------------------------------------------------------------------------


class Command:
    """Base class for SMT-LIB script commands."""

    __slots__ = ()


@dataclass(frozen=True)
class SetLogic(Command):
    logic: str


@dataclass(frozen=True)
class SetInfo(Command):
    keyword: str
    value: str


@dataclass(frozen=True)
class SetOption(Command):
    keyword: str
    value: str


@dataclass(frozen=True)
class DeclareFun(Command):
    """``declare-fun``/``declare-const``; only zero-arity (variables) here."""

    name: str
    arg_sorts: tuple
    return_sort: Sort
    const_syntax: bool = False  # printed as declare-const when True

    def __post_init__(self):
        if not isinstance(self.arg_sorts, tuple):
            object.__setattr__(self, "arg_sorts", tuple(self.arg_sorts))


@dataclass(frozen=True)
class DefineFun(Command):
    """A macro definition; applications are expanded at parse time."""

    name: str
    params: tuple  # tuple[(name, Sort), ...]
    return_sort: Sort
    body: Term

    def __post_init__(self):
        if not isinstance(self.params, tuple):
            object.__setattr__(self, "params", tuple(self.params))


@dataclass(frozen=True)
class Assert(Command):
    term: Term


@dataclass(frozen=True)
class CheckSat(Command):
    pass


@dataclass(frozen=True)
class GetModel(Command):
    pass


@dataclass(frozen=True)
class Exit(Command):
    pass


@dataclass
class Script:
    """An SMT-LIB script: an ordered list of commands.

    Provides the views YinYang needs: declared variables, assertion
    terms, and the conjunction of all assertions.
    """

    commands: list = field(default_factory=list)

    @property
    def logic(self):
        """The declared logic name, or ``None`` if no ``set-logic``."""
        for cmd in self.commands:
            if isinstance(cmd, SetLogic):
                return cmd.logic
        return None

    @property
    def declarations(self):
        """Mapping from declared variable name to :class:`Var` (arity 0 only)."""
        result = {}
        for cmd in self.commands:
            if isinstance(cmd, DeclareFun) and not cmd.arg_sorts:
                result[cmd.name] = Var(cmd.name, cmd.return_sort)
        return result

    @property
    def asserts(self):
        """The asserted terms, in script order."""
        return [cmd.term for cmd in self.commands if isinstance(cmd, Assert)]

    def conjunction(self):
        """The conjunction of all assertions (``true`` if none)."""
        terms = self.asserts
        if not terms:
            return TRUE
        if len(terms) == 1:
            return terms[0]
        return App("and", tuple(terms), BOOL)

    def free_variables(self):
        """Free variables of all assertions, in deterministic order."""
        seen = {}
        for term in self.asserts:
            for var in sorted(free_vars(term), key=lambda v: v.name):
                seen.setdefault(var.name, var)
        return list(seen.values())

    def with_asserts(self, new_asserts):
        """Copy of this script with the assert commands replaced."""
        commands = []
        inserted = False
        for cmd in self.commands:
            if isinstance(cmd, Assert):
                if not inserted:
                    commands.extend(Assert(t) for t in new_asserts)
                    inserted = True
            else:
                commands.append(cmd)
        if not inserted:
            insert_at = len(commands)
            for i, cmd in enumerate(commands):
                if isinstance(cmd, (CheckSat, GetModel, Exit)):
                    insert_at = i
                    break
            commands[insert_at:insert_at] = [Assert(t) for t in new_asserts]
        return Script(commands)

    def __str__(self):
        from repro.smtlib.printer import print_script

        return print_script(self)
