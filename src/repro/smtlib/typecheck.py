"""Sort checking and inference for SMT-LIB operators.

The central entry point is :func:`app`, a smart constructor that
canonicalizes operator spellings, checks argument sorts, applies the
standard Int-to-Real numeral coercions, and returns a well-sorted
:class:`~repro.smtlib.ast.App` node.

The operator universe covers everything the paper's logics need:
core booleans, integer and real (non)linear arithmetic, unicode-free
strings, and regular expressions.

Construction sits on the fuzzing hot path (every fused constraint and
inversion term goes through :func:`app`), so dispatch is a per-operator
handler table rather than an if-chain, and the common all-arguments-
already-well-sorted case is checked with identity comparisons against
the interned sort singletons before falling back to the general
coercion logic.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import SortError
from repro.smtlib import theory as _theory
from repro.smtlib.ast import Const, Term, mk_app, mk_const
from repro.smtlib.sorts import BOOL, INT, REAL, REGLAN, STRING

# The merged operator universe and alias map are *live* registry views:
# they are populated by the theory registrations at the bottom of this
# module (core, arithmetic, strings) and grow when further theories
# register (e.g. :mod:`repro.smtlib.bitvec` at package import).
OP_ALIASES = _theory.alias_table()
ALL_OPS = _theory.all_ops()


def canonical_op(op):
    """Normalize an operator spelling to its canonical form."""
    return OP_ALIASES.get(op, op)


def is_known_op(op):
    """True if ``op`` (possibly an alias) is a supported operator."""
    return canonical_op(op) in ALL_OPS or _theory.is_indexed_op(op)


def _fail(op, args, why):
    rendered = ", ".join(str(a.sort) for a in args)
    raise SortError(f"ill-sorted ({op} ...): argument sorts [{rendered}]: {why}")


def _coerce_real(term):
    """Coerce a term of sort Int to sort Real.

    Integer constants become real constants (the SMT-LIB numeral rule);
    other terms are wrapped in ``to_real``.
    """
    if term.sort == REAL:
        return term
    if term.sort != INT:
        raise SortError(f"cannot coerce sort {term.sort} to Real")
    if isinstance(term, Const):
        return mk_const(Fraction(term.value), REAL)
    return mk_app("to_real", (term,), REAL)


def _numeric_common(op, args):
    """Coerce mixed Int/Real arguments to a common numeric sort."""
    sorts = {a.sort for a in args}
    if not sorts <= {INT, REAL}:
        _fail(op, args, "expected numeric arguments")
    if sorts == {INT}:
        return list(args), INT
    return [_coerce_real(a) for a in args], REAL


def _expect_arity(op, args, n):
    if len(args) != n:
        _fail(op, args, f"expected {n} argument(s), got {len(args)}")


def _expect_min_arity(op, args, n):
    if len(args) < n:
        _fail(op, args, f"expected at least {n} argument(s), got {len(args)}")


def _expect_sorts(op, args, sort):
    for a in args:
        if a.sort is not sort and a.sort != sort:
            _fail(op, args, f"expected all arguments of sort {sort}")


def _expect_sig(op, args, sig):
    for a, s in zip(args, sig):
        if a.sort is not s and a.sort != s:
            _fail(op, args, f"expected signature {tuple(str(x) for x in sig)}")


# -- per-operator handlers (receive the canonical op and an args tuple) ----


def _h_not(op, args):
    _expect_arity(op, args, 1)
    _expect_sorts(op, args, BOOL)
    return mk_app("not", args, BOOL)


def _h_bool_nary(op, args):
    _expect_min_arity(op, args, 2 if op == "=>" else 1)
    _expect_sorts(op, args, BOOL)
    return mk_app(op, args, BOOL)


def _h_eq(op, args):
    _expect_min_arity(op, args, 2)
    first = args[0].sort
    for a in args:
        if a.sort is not first:
            return _h_eq_general(op, args)
    return mk_app(op, args, BOOL)


def _h_eq_general(op, args):
    sorts = {a.sort for a in args}
    if sorts <= {INT, REAL} and len(sorts) > 1:
        args = tuple(_coerce_real(a) for a in args)
    elif len(sorts) > 1:
        _fail(op, args, "arguments must share a sort")
    return mk_app(op, args, BOOL)


def _h_ite(op, args):
    _expect_arity(op, args, 3)
    if args[0].sort != BOOL:
        _fail(op, args, "condition must be Bool")
    then, other = args[1], args[2]
    if then.sort != other.sort:
        if {then.sort, other.sort} == {INT, REAL}:
            then, other = _coerce_real(then), _coerce_real(other)
        else:
            _fail(op, args, "branches must share a sort")
    return mk_app("ite", (args[0], then, other), then.sort)


def _h_add_mul(op, args):
    _expect_min_arity(op, args, 1)
    sort = args[0].sort
    if sort is INT or sort is REAL:
        for a in args:
            if a.sort is not sort:
                break
        else:
            return mk_app(op, args, sort)
    largs, sort = _numeric_common(op, args)
    return mk_app(op, tuple(largs), sort)


def _h_sub(op, args):
    _expect_min_arity(op, args, 1)
    sort = args[0].sort
    if sort is INT or sort is REAL:
        for a in args:
            if a.sort is not sort:
                break
        else:
            if len(args) == 1 and isinstance(args[0], Const):
                # Normalize unary minus of a literal to a negative
                # constant, so printing and re-parsing yield identical
                # ASTs.
                value = args[0].value
                return mk_const(-value if sort is INT else Fraction(-value), sort)
            return mk_app("-", args, sort)
    largs, sort = _numeric_common(op, args)
    if len(largs) == 1 and isinstance(largs[0], Const):
        value = largs[0].value
        return mk_const(-value if sort == INT else Fraction(-value), sort)
    return mk_app("-", tuple(largs), sort)


def _h_real_div(op, args):
    _expect_min_arity(op, args, 2)
    for a in args:
        if a.sort is not REAL:
            return mk_app("/", tuple(_coerce_real(x) for x in args), REAL)
    return mk_app("/", args, REAL)


def _h_div_mod(op, args):
    _expect_arity(op, args, 2)
    _expect_sorts(op, args, INT)
    return mk_app(op, args, INT)


def _h_abs(op, args):
    _expect_arity(op, args, 1)
    if args[0].sort not in (INT, REAL):
        _fail(op, args, "expected a numeric argument")
    return mk_app("abs", args, args[0].sort)


def _h_compare(op, args):
    _expect_min_arity(op, args, 2)
    sort = args[0].sort
    if sort is INT or sort is REAL:
        for a in args:
            if a.sort is not sort:
                break
        else:
            return mk_app(op, args, BOOL)
    largs, _ = _numeric_common(op, args)
    return mk_app(op, tuple(largs), BOOL)


def _h_to_real(op, args):
    _expect_arity(op, args, 1)
    _expect_sorts(op, args, INT)
    return mk_app("to_real", args, REAL)


def _h_to_int(op, args):
    _expect_arity(op, args, 1)
    _expect_sorts(op, args, REAL)
    return mk_app("to_int", args, INT)


def _h_is_int(op, args):
    _expect_arity(op, args, 1)
    _expect_sorts(op, args, REAL)
    return mk_app("is_int", args, BOOL)


def _h_str_concat(op, args):
    _expect_min_arity(op, args, 2)
    _expect_sorts(op, args, STRING)
    return mk_app(op, args, STRING)


def _h_str_len(op, args):
    _expect_arity(op, args, 1)
    _expect_sorts(op, args, STRING)
    return mk_app(op, args, INT)


def _h_str_at(op, args):
    _expect_arity(op, args, 2)
    _expect_sig(op, args, (STRING, INT))
    return mk_app(op, args, STRING)


def _h_str_substr(op, args):
    _expect_arity(op, args, 3)
    _expect_sig(op, args, (STRING, INT, INT))
    return mk_app(op, args, STRING)


def _h_str_indexof(op, args):
    _expect_arity(op, args, 3)
    _expect_sig(op, args, (STRING, STRING, INT))
    return mk_app(op, args, INT)


def _h_str_replace(op, args):
    _expect_arity(op, args, 3)
    _expect_sorts(op, args, STRING)
    return mk_app(op, args, STRING)


def _h_str_pred(op, args):
    _expect_arity(op, args, 2)
    _expect_sorts(op, args, STRING)
    return mk_app(op, args, BOOL)


def _h_str_to_int(op, args):
    _expect_arity(op, args, 1)
    _expect_sorts(op, args, STRING)
    return mk_app(op, args, INT)


def _h_str_from_int(op, args):
    _expect_arity(op, args, 1)
    _expect_sorts(op, args, INT)
    return mk_app(op, args, STRING)


def _h_str_in_re(op, args):
    _expect_arity(op, args, 2)
    _expect_sig(op, args, (STRING, REGLAN))
    return mk_app(op, args, BOOL)


def _h_str_to_re(op, args):
    _expect_arity(op, args, 1)
    _expect_sorts(op, args, STRING)
    return mk_app(op, args, REGLAN)


def _h_re_nullary(op, args):
    _expect_arity(op, args, 0)
    return mk_app(op, (), REGLAN)


def _h_re_nary(op, args):
    _expect_min_arity(op, args, 2)
    _expect_sorts(op, args, REGLAN)
    return mk_app(op, args, REGLAN)


def _h_re_unary(op, args):
    _expect_arity(op, args, 1)
    _expect_sorts(op, args, REGLAN)
    return mk_app(op, args, REGLAN)


def _h_re_range(op, args):
    _expect_arity(op, args, 2)
    _expect_sorts(op, args, STRING)
    return mk_app(op, args, REGLAN)


# -- theory registrations --------------------------------------------------
#
# Canonical operator spellings follow the paper's figures (SMT-LIB 2.5
# style for strings, e.g. ``str.to.int``); 2.6 spellings are accepted
# as aliases and normalized on construction. Sharing a handler object
# between two operators declares them type-equivalent (see below), so
# each theory's handler table doubles as its mutation-class definition.

_CORE = _theory.register_theory(_theory.Theory(
    name="core",
    sorts=(BOOL,),
    handlers={
        "not": _h_not,
        "and": _h_bool_nary,
        "or": _h_bool_nary,
        "xor": _h_bool_nary,
        "=>": _h_bool_nary,
        "=": _h_eq,
        "distinct": _h_eq,
        "ite": _h_ite,
    },
    aliases={"=>": "=>"},
    lazy_ops=("and", "or", "ite", "=>"),
    connectives=("not", "and", "or", "xor", "=>", "ite", "=", "distinct"),
))

_ARITHMETIC = _theory.register_theory(_theory.Theory(
    name="arithmetic",
    sorts=(INT, REAL),
    handlers={
        "+": _h_add_mul,
        "*": _h_add_mul,
        "-": _h_sub,
        "/": _h_real_div,
        "div": _h_div_mod,
        "mod": _h_div_mod,
        "abs": _h_abs,
        "<": _h_compare,
        "<=": _h_compare,
        ">": _h_compare,
        ">=": _h_compare,
        "to_real": _h_to_real,
        "to_int": _h_to_int,
        "is_int": _h_is_int,
    },
    hard_mul_ops=("*",),
    hard_div_ops=("/", "div", "mod"),
    fusible_sorts=(INT, REAL),
    fusion_schemes=(
        "int-addition", "int-addition-constant",
        "int-multiplication", "int-affine",
        "real-addition", "real-addition-constant",
        "real-multiplication", "real-affine",
    ),
    logics=(
        "LIA", "LRA", "NIA", "NRA",
        "QF_LIA", "QF_LRA", "QF_NIA", "QF_NRA",
    ),
    seed_families=("QF_LIA", "QF_LRA", "QF_NIA", "QF_NRA", "LIA", "NIA", "NRA"),
    solver_backend="nonlinear",
))

_STRINGS = _theory.register_theory(_theory.Theory(
    name="strings",
    sorts=(STRING, REGLAN),
    handlers={
        "str.++": _h_str_concat,
        "str.len": _h_str_len,
        "str.at": _h_str_at,
        "str.substr": _h_str_substr,
        "str.indexof": _h_str_indexof,
        "str.replace": _h_str_replace,
        "str.prefixof": _h_str_pred,
        "str.suffixof": _h_str_pred,
        "str.contains": _h_str_pred,
        "str.to.int": _h_str_to_int,
        "str.from.int": _h_str_from_int,
        "str.in.re": _h_str_in_re,
        "str.to.re": _h_str_to_re,
        "re.none": _h_re_nullary,
        "re.all": _h_re_nullary,
        "re.allchar": _h_re_nullary,
        "re.++": _h_re_nary,
        "re.union": _h_re_nary,
        "re.inter": _h_re_nary,
        "re.*": _h_re_unary,
        "re.+": _h_re_unary,
        "re.opt": _h_re_unary,
        "re.comp": _h_re_unary,
        "re.range": _h_re_range,
    },
    aliases={
        "str.to_int": "str.to.int",
        "str.from_int": "str.from.int",
        "int.to.str": "str.from.int",
        "str.in_re": "str.in.re",
        "str.to_re": "str.to.re",
        "str.substring": "str.substr",
    },
    lazy_ops=("str.in.re",),
    fusible_sorts=(STRING,),
    fusion_schemes=(
        "string-concat-substr", "string-concat-replace", "string-concat-infix",
    ),
    logics=("QF_S", "QF_SLIA"),
    seed_families=("QF_S", "QF_SLIA"),
    solver_backend="strings",
))

# Historical per-theory op sets, now derived from the registrations.
CORE_OPS = set(_CORE.handlers)
ARITH_OPS = set(_ARITHMETIC.handlers)
STRING_OPS = {op for op in _STRINGS.handlers if op.startswith("str.")}
REGEX_OPS = {op for op in _STRINGS.handlers if op.startswith("re.")}

# The live merged dispatch table (the registry mutates it in place when
# later theories — bitvectors — register their handlers).
_HANDLERS = _theory.handler_table()


# -- type-equivalence classes (OpFuzz-style operator mutation) -------------
#
# Two operators are *type-equivalent* when they share a handler above:
# the handler IS the signature — same accepted argument sorts, same
# coercions, same result sort — so swapping one class member for
# another can never produce an ill-sorted term. This is the ground
# truth the type-aware operator-mutation strategy
# (:mod:`repro.strategies.opfuzz`) draws its replacement candidates
# from; deriving it from the dispatch table means a new operator joins
# the right mutation class the moment it gets a handler.
#
# The one intra-class arity wrinkle: ``=>`` demands at least two
# arguments while its boolean classmates accept one, so it is only a
# valid replacement at arity >= 2.
_CLASS_MIN_ARITY = {"=>": 2}


def _equivalence_by_op():
    by_handler = {}
    for op, handler in _HANDLERS.items():
        by_handler.setdefault(handler, []).append(op)
    return {
        op: tuple(sorted(ops))
        for ops in by_handler.values()
        if len(ops) > 1
        for op in ops
    }


# The class map is cached against the registry version: theories that
# register after this module's import (bitvectors) extend the dispatch
# table, and their operators must join the right class on first use.
_EQUIV_CACHE = (-1, {})


def _equiv_map():
    global _EQUIV_CACHE
    version = _theory.registry_version()
    if _EQUIV_CACHE[0] != version:
        _EQUIV_CACHE = (version, _equivalence_by_op())
    return _EQUIV_CACHE[1]


def operator_equivalence_classes():
    """The type-equivalence classes of the dispatch table.

    Returns a sorted tuple of sorted operator tuples, one per class
    with at least two members (singletons have no mutation partners).
    """
    return tuple(sorted({ops for ops in _equiv_map().values()}))


def mutation_alternatives(op, arity):
    """Type-compatible replacements for ``op`` applied to ``arity`` args.

    Returns the other members of ``op``'s type-equivalence class that
    accept ``arity`` arguments (sorted, deterministic). Empty when the
    operator is unknown, alone in its class, or no classmate admits the
    arity — i.e. exactly when this occurrence cannot be mutated.
    """
    ops = _equiv_map().get(canonical_op(op))
    if not ops:
        return ()
    return tuple(
        o for o in ops if o != op and arity >= _CLASS_MIN_ARITY.get(o, 0)
    )


def app(op, *args):
    """Build a well-sorted application of ``op`` to ``args``.

    Raises :class:`~repro.errors.SortError` for arity or sort mismatches.
    """
    handler = _HANDLERS.get(op)
    if handler is None:
        op = OP_ALIASES.get(op, op)
        handler = _HANDLERS.get(op)
        if handler is None:
            # Indexed operator spellings ("(_ extract 3 0)") carry their
            # indices in the op string; the owning theory parses them.
            handler = _theory.indexed_handler_for(op)
        if handler is None:
            raise SortError(f"unknown operator: {op!r}")
    try:
        return handler(op, args)
    except AttributeError:
        # Handlers read ``.sort`` without an upfront isinstance sweep;
        # recover the historical TypeError for non-Term arguments here,
        # off the hot path.
        for a in args:
            if not isinstance(a, Term):
                raise TypeError(f"argument to {op} is not a Term: {a!r}") from None
        raise
