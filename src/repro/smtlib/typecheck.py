"""Sort checking and inference for SMT-LIB operators.

The central entry point is :func:`app`, a smart constructor that
canonicalizes operator spellings, checks argument sorts, applies the
standard Int-to-Real numeral coercions, and returns a well-sorted
:class:`~repro.smtlib.ast.App` node.

The operator universe covers everything the paper's logics need:
core booleans, integer and real (non)linear arithmetic, unicode-free
strings, and regular expressions.
"""

from __future__ import annotations

from fractions import Fraction

from repro.errors import SortError
from repro.smtlib.ast import App, Const, Term
from repro.smtlib.sorts import BOOL, INT, REAL, REGLAN, STRING

# Canonical operator spellings follow the paper's figures (SMT-LIB 2.5
# style for strings, e.g. ``str.to.int``); 2.6 spellings are accepted
# as aliases and normalized on construction.
OP_ALIASES = {
    "str.to_int": "str.to.int",
    "str.from_int": "str.from.int",
    "int.to.str": "str.from.int",
    "str.in_re": "str.in.re",
    "str.to_re": "str.to.re",
    "str.substring": "str.substr",
    "=>": "=>",
}

CORE_OPS = {"not", "and", "or", "xor", "=>", "=", "distinct", "ite"}
ARITH_OPS = {
    "+", "-", "*", "/", "div", "mod", "abs",
    "<", "<=", ">", ">=", "to_real", "to_int", "is_int",
}
STRING_OPS = {
    "str.++", "str.len", "str.at", "str.substr", "str.indexof",
    "str.replace", "str.prefixof", "str.suffixof", "str.contains",
    "str.to.int", "str.from.int", "str.in.re", "str.to.re",
}
REGEX_OPS = {
    "re.none", "re.all", "re.allchar", "re.++", "re.union", "re.inter",
    "re.*", "re.+", "re.opt", "re.range", "re.comp",
}

ALL_OPS = CORE_OPS | ARITH_OPS | STRING_OPS | REGEX_OPS


def canonical_op(op):
    """Normalize an operator spelling to its canonical form."""
    return OP_ALIASES.get(op, op)


def is_known_op(op):
    """True if ``op`` (possibly an alias) is a supported operator."""
    return canonical_op(op) in ALL_OPS


def _fail(op, args, why):
    rendered = ", ".join(str(a.sort) for a in args)
    raise SortError(f"ill-sorted ({op} ...): argument sorts [{rendered}]: {why}")


def _coerce_real(term):
    """Coerce a term of sort Int to sort Real.

    Integer constants become real constants (the SMT-LIB numeral rule);
    other terms are wrapped in ``to_real``.
    """
    if term.sort == REAL:
        return term
    if term.sort != INT:
        raise SortError(f"cannot coerce sort {term.sort} to Real")
    if isinstance(term, Const):
        return Const(Fraction(term.value), REAL)
    return App("to_real", (term,), REAL)


def _numeric_common(op, args):
    """Coerce mixed Int/Real arguments to a common numeric sort."""
    sorts = {a.sort for a in args}
    if not sorts <= {INT, REAL}:
        _fail(op, args, "expected numeric arguments")
    if sorts == {INT}:
        return list(args), INT
    return [_coerce_real(a) for a in args], REAL


def app(op, *args):
    """Build a well-sorted application of ``op`` to ``args``.

    Raises :class:`~repro.errors.SortError` for arity or sort mismatches.
    """
    op = canonical_op(op)
    args = list(args)
    for a in args:
        if not isinstance(a, Term):
            raise TypeError(f"argument to {op} is not a Term: {a!r}")

    if op not in ALL_OPS:
        raise SortError(f"unknown operator: {op!r}")

    # --- core ---------------------------------------------------------
    if op == "not":
        _expect_arity(op, args, 1)
        _expect_sorts(op, args, BOOL)
        return App("not", tuple(args), BOOL)
    if op in ("and", "or", "xor", "=>"):
        _expect_min_arity(op, args, 2 if op == "=>" else 1)
        _expect_sorts(op, args, BOOL)
        return App(op, tuple(args), BOOL)
    if op in ("=", "distinct"):
        _expect_min_arity(op, args, 2)
        sorts = {a.sort for a in args}
        if sorts <= {INT, REAL} and len(sorts) > 1:
            args = [_coerce_real(a) for a in args]
        elif len(sorts) > 1:
            _fail(op, args, "arguments must share a sort")
        return App(op, tuple(args), BOOL)
    if op == "ite":
        _expect_arity(op, args, 3)
        if args[0].sort != BOOL:
            _fail(op, args, "condition must be Bool")
        then, other = args[1], args[2]
        if then.sort != other.sort:
            if {then.sort, other.sort} == {INT, REAL}:
                then, other = _coerce_real(then), _coerce_real(other)
            else:
                _fail(op, args, "branches must share a sort")
        return App("ite", (args[0], then, other), then.sort)

    # --- arithmetic ----------------------------------------------------
    if op in ("+", "*"):
        _expect_min_arity(op, args, 1)
        args, sort = _numeric_common(op, args)
        return App(op, tuple(args), sort)
    if op == "-":
        _expect_min_arity(op, args, 1)
        args, sort = _numeric_common(op, args)
        if len(args) == 1 and isinstance(args[0], Const):
            # Normalize unary minus of a literal to a negative constant,
            # so printing and re-parsing yield identical ASTs.
            value = args[0].value
            return Const(-value if sort == INT else Fraction(-value), sort)
        return App("-", tuple(args), sort)
    if op == "/":
        _expect_min_arity(op, args, 2)
        args = [_coerce_real(a) for a in args]
        return App("/", tuple(args), REAL)
    if op in ("div", "mod"):
        _expect_arity(op, args, 2)
        _expect_sorts(op, args, INT)
        return App(op, tuple(args), INT)
    if op == "abs":
        _expect_arity(op, args, 1)
        if args[0].sort not in (INT, REAL):
            _fail(op, args, "expected a numeric argument")
        return App("abs", tuple(args), args[0].sort)
    if op in ("<", "<=", ">", ">="):
        _expect_min_arity(op, args, 2)
        args, _ = _numeric_common(op, args)
        return App(op, tuple(args), BOOL)
    if op == "to_real":
        _expect_arity(op, args, 1)
        _expect_sorts(op, args, INT)
        return App("to_real", tuple(args), REAL)
    if op == "to_int":
        _expect_arity(op, args, 1)
        _expect_sorts(op, args, REAL)
        return App("to_int", tuple(args), INT)
    if op == "is_int":
        _expect_arity(op, args, 1)
        _expect_sorts(op, args, REAL)
        return App("is_int", tuple(args), BOOL)

    # --- strings ---------------------------------------------------------
    if op == "str.++":
        _expect_min_arity(op, args, 2)
        _expect_sorts(op, args, STRING)
        return App(op, tuple(args), STRING)
    if op == "str.len":
        _expect_arity(op, args, 1)
        _expect_sorts(op, args, STRING)
        return App(op, tuple(args), INT)
    if op == "str.at":
        _expect_arity(op, args, 2)
        _expect_sig(op, args, (STRING, INT))
        return App(op, tuple(args), STRING)
    if op == "str.substr":
        _expect_arity(op, args, 3)
        _expect_sig(op, args, (STRING, INT, INT))
        return App(op, tuple(args), STRING)
    if op == "str.indexof":
        _expect_arity(op, args, 3)
        _expect_sig(op, args, (STRING, STRING, INT))
        return App(op, tuple(args), INT)
    if op == "str.replace":
        _expect_arity(op, args, 3)
        _expect_sorts(op, args, STRING)
        return App(op, tuple(args), STRING)
    if op in ("str.prefixof", "str.suffixof", "str.contains"):
        _expect_arity(op, args, 2)
        _expect_sorts(op, args, STRING)
        return App(op, tuple(args), BOOL)
    if op == "str.to.int":
        _expect_arity(op, args, 1)
        _expect_sorts(op, args, STRING)
        return App(op, tuple(args), INT)
    if op == "str.from.int":
        _expect_arity(op, args, 1)
        _expect_sorts(op, args, INT)
        return App(op, tuple(args), STRING)
    if op == "str.in.re":
        _expect_arity(op, args, 2)
        _expect_sig(op, args, (STRING, REGLAN))
        return App(op, tuple(args), BOOL)
    if op == "str.to.re":
        _expect_arity(op, args, 1)
        _expect_sorts(op, args, STRING)
        return App(op, tuple(args), REGLAN)

    # --- regular expressions ----------------------------------------------
    if op in ("re.none", "re.all", "re.allchar"):
        _expect_arity(op, args, 0)
        return App(op, (), REGLAN)
    if op in ("re.++", "re.union", "re.inter"):
        _expect_min_arity(op, args, 2)
        _expect_sorts(op, args, REGLAN)
        return App(op, tuple(args), REGLAN)
    if op in ("re.*", "re.+", "re.opt", "re.comp"):
        _expect_arity(op, args, 1)
        _expect_sorts(op, args, REGLAN)
        return App(op, tuple(args), REGLAN)
    if op == "re.range":
        _expect_arity(op, args, 2)
        _expect_sorts(op, args, STRING)
        return App(op, tuple(args), REGLAN)

    raise SortError(f"unhandled operator: {op!r}")  # pragma: no cover


def _expect_arity(op, args, n):
    if len(args) != n:
        _fail(op, args, f"expected {n} argument(s), got {len(args)}")


def _expect_min_arity(op, args, n):
    if len(args) < n:
        _fail(op, args, f"expected at least {n} argument(s), got {len(args)}")


def _expect_sorts(op, args, sort):
    for a in args:
        if a.sort != sort:
            _fail(op, args, f"expected all arguments of sort {sort}")


def _expect_sig(op, args, sig):
    for a, s in zip(args, sig):
        if a.sort != s:
            _fail(op, args, f"expected signature {tuple(str(x) for x in sig)}")
