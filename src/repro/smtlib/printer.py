"""Emission of SMT-LIB v2 concrete syntax for terms and scripts."""

from __future__ import annotations

from fractions import Fraction

from repro.smtlib.ast import (
    App,
    Assert,
    CheckSat,
    Const,
    DeclareFun,
    DefineFun,
    Exit,
    GetModel,
    Quantifier,
    SetInfo,
    SetLogic,
    SetOption,
    Var,
)
from repro.smtlib import theory as _theory
from repro.smtlib.sorts import BOOL, INT, REAL, STRING


def _print_real(value):
    numerator, denominator = abs(value.numerator), value.denominator
    if denominator == 1:
        magnitude = f"{numerator}.0"
    else:
        # Prefer an exact decimal when the denominator divides a power of
        # ten, otherwise fall back to a division term.
        reduced = denominator
        twos = fives = 0
        while reduced % 2 == 0:
            reduced //= 2
            twos += 1
        while reduced % 5 == 0:
            reduced //= 5
            fives += 1
        if reduced == 1:
            places = max(twos, fives)
            scaled = numerator * (10**places // denominator)
            digits = str(scaled).rjust(places + 1, "0")
            magnitude = f"{digits[:-places]}.{digits[-places:]}"
        else:
            magnitude = f"(/ {numerator}.0 {denominator}.0)"
    if value < 0:
        return f"(- {magnitude})"
    return magnitude


def _print_string(value):
    return '"' + value.replace('"', '""') + '"'


def _print_const(term):
    if term.sort == BOOL:
        return "true" if term.value else "false"
    if term.sort == INT:
        if term.value < 0:
            return f"(- {-term.value})"
        return str(term.value)
    if term.sort == REAL:
        return _print_real(Fraction(term.value))
    if term.sort == STRING:
        return _print_string(term.value)
    printer = _theory.const_printer_for(term.sort)
    if printer is not None:
        # Registered-theory literal spellings (bitvector #b constants).
        return printer(term.value, term.sort)
    raise TypeError(f"cannot print constant of sort {term.sort}")


def print_term(term, _memo=None):
    """Render a term in SMT-LIB concrete syntax.

    Iterative DAG traversal: an identity-keyed memo renders each shared
    subterm once, and deep terms do not hit the recursion limit. Pass a
    shared ``_memo`` dict to amortize rendering across several terms
    (see :func:`print_script`); interned terms make its hit rate high.
    """
    memo = {} if _memo is None else _memo
    stack = [term]
    while stack:
        node = stack[-1]
        nid = id(node)
        if nid in memo:
            stack.pop()
            continue
        cls = node.__class__
        if cls is Const:
            memo[nid] = _print_const(node)
            stack.pop()
        elif cls is Var:
            memo[nid] = node.name
            stack.pop()
        elif cls is App:
            if not node.args:
                memo[nid] = node.op
                stack.pop()
                continue
            pending = [a for a in node.args if id(a) not in memo]
            if pending:
                stack.extend(pending)
                continue
            inner = " ".join(memo[id(a)] for a in node.args)
            memo[nid] = f"({node.op} {inner})"
            stack.pop()
        elif cls is Quantifier:
            body = node.body
            if id(body) not in memo:
                stack.append(body)
                continue
            bindings = " ".join(f"({name} {sort})" for name, sort in node.bindings)
            memo[nid] = f"({node.kind} ({bindings}) {memo[id(body)]})"
            stack.pop()
        else:
            raise TypeError(f"not a term: {node!r}")
    return memo[id(term)]


def print_command(cmd, _memo=None):
    """Render a single command in SMT-LIB concrete syntax."""
    if isinstance(cmd, SetLogic):
        return f"(set-logic {cmd.logic})"
    if isinstance(cmd, SetInfo):
        return f"(set-info {cmd.keyword} {cmd.value})" if cmd.value else f"(set-info {cmd.keyword})"
    if isinstance(cmd, SetOption):
        return (
            f"(set-option {cmd.keyword} {cmd.value})" if cmd.value else f"(set-option {cmd.keyword})"
        )
    if isinstance(cmd, DeclareFun):
        if cmd.const_syntax:
            return f"(declare-const {cmd.name} {cmd.return_sort})"
        arg_sorts = " ".join(str(s) for s in cmd.arg_sorts)
        return f"(declare-fun {cmd.name} ({arg_sorts}) {cmd.return_sort})"
    if isinstance(cmd, DefineFun):
        params = " ".join(f"({name} {sort})" for name, sort in cmd.params)
        return f"(define-fun {cmd.name} ({params}) {cmd.return_sort} {print_term(cmd.body, _memo)})"
    if isinstance(cmd, Assert):
        return f"(assert {print_term(cmd.term, _memo)})"
    if isinstance(cmd, CheckSat):
        return "(check-sat)"
    if isinstance(cmd, GetModel):
        return "(get-model)"
    if isinstance(cmd, Exit):
        return "(exit)"
    raise TypeError(f"not a command: {cmd!r}")


def print_script(script):
    """Render a script, one command per line.

    A single render memo is shared across all commands, so a subterm
    asserted (or embedded) repeatedly is rendered once.
    """
    memo = {}
    return "\n".join(print_command(cmd, memo) for cmd in script.commands) + "\n"
