"""Emission of SMT-LIB v2 concrete syntax for terms and scripts."""

from __future__ import annotations

from fractions import Fraction

from repro.smtlib.ast import (
    App,
    Assert,
    CheckSat,
    Const,
    DeclareFun,
    DefineFun,
    Exit,
    GetModel,
    Quantifier,
    SetInfo,
    SetLogic,
    SetOption,
    Var,
)
from repro.smtlib.sorts import BOOL, INT, REAL, STRING


def _print_real(value):
    numerator, denominator = abs(value.numerator), value.denominator
    if denominator == 1:
        magnitude = f"{numerator}.0"
    else:
        # Prefer an exact decimal when the denominator divides a power of
        # ten, otherwise fall back to a division term.
        reduced = denominator
        twos = fives = 0
        while reduced % 2 == 0:
            reduced //= 2
            twos += 1
        while reduced % 5 == 0:
            reduced //= 5
            fives += 1
        if reduced == 1:
            places = max(twos, fives)
            scaled = numerator * (10**places // denominator)
            digits = str(scaled).rjust(places + 1, "0")
            magnitude = f"{digits[:-places]}.{digits[-places:]}"
        else:
            magnitude = f"(/ {numerator}.0 {denominator}.0)"
    if value < 0:
        return f"(- {magnitude})"
    return magnitude


def _print_string(value):
    return '"' + value.replace('"', '""') + '"'


def print_term(term):
    """Render a term in SMT-LIB concrete syntax."""
    if isinstance(term, Const):
        if term.sort == BOOL:
            return "true" if term.value else "false"
        if term.sort == INT:
            if term.value < 0:
                return f"(- {-term.value})"
            return str(term.value)
        if term.sort == REAL:
            return _print_real(Fraction(term.value))
        if term.sort == STRING:
            return _print_string(term.value)
        raise TypeError(f"cannot print constant of sort {term.sort}")
    if isinstance(term, Var):
        return term.name
    if isinstance(term, App):
        if not term.args:
            return term.op
        inner = " ".join(print_term(a) for a in term.args)
        return f"({term.op} {inner})"
    if isinstance(term, Quantifier):
        bindings = " ".join(f"({name} {sort})" for name, sort in term.bindings)
        return f"({term.kind} ({bindings}) {print_term(term.body)})"
    raise TypeError(f"not a term: {term!r}")


def print_command(cmd):
    """Render a single command in SMT-LIB concrete syntax."""
    if isinstance(cmd, SetLogic):
        return f"(set-logic {cmd.logic})"
    if isinstance(cmd, SetInfo):
        return f"(set-info {cmd.keyword} {cmd.value})" if cmd.value else f"(set-info {cmd.keyword})"
    if isinstance(cmd, SetOption):
        return (
            f"(set-option {cmd.keyword} {cmd.value})" if cmd.value else f"(set-option {cmd.keyword})"
        )
    if isinstance(cmd, DeclareFun):
        if cmd.const_syntax:
            return f"(declare-const {cmd.name} {cmd.return_sort})"
        arg_sorts = " ".join(str(s) for s in cmd.arg_sorts)
        return f"(declare-fun {cmd.name} ({arg_sorts}) {cmd.return_sort})"
    if isinstance(cmd, DefineFun):
        params = " ".join(f"({name} {sort})" for name, sort in cmd.params)
        return f"(define-fun {cmd.name} ({params}) {cmd.return_sort} {print_term(cmd.body)})"
    if isinstance(cmd, Assert):
        return f"(assert {print_term(cmd.term)})"
    if isinstance(cmd, CheckSat):
        return "(check-sat)"
    if isinstance(cmd, GetModel):
        return "(get-model)"
    if isinstance(cmd, Exit):
        return "(exit)"
    raise TypeError(f"not a command: {cmd!r}")


def print_script(script):
    """Render a script, one command per line."""
    return "\n".join(print_command(cmd) for cmd in script.commands) + "\n"
