"""Convenience constructors for building SMT-LIB terms from Python.

These helpers wrap the sort-checked smart constructor
:func:`repro.smtlib.typecheck.app` and accept plain Python values
(``int``, ``bool``, :class:`~fractions.Fraction`, ``str``) where a
constant is expected, which keeps generator and test code readable::

    from repro.smtlib import builder as b

    x = b.int_var("x")
    phi = b.and_(b.gt(x, 0), b.lt(x, 10))
"""

from __future__ import annotations

from fractions import Fraction

from repro.smtlib.ast import Term, Var, mk_const, mk_quantifier, mk_var
from repro.smtlib.sorts import BOOL, INT, REAL, STRING
from repro.smtlib.typecheck import _HANDLERS, app


def int_var(name):
    return mk_var(name, INT)


def real_var(name):
    return mk_var(name, REAL)


def bool_var(name):
    return mk_var(name, BOOL)


def string_var(name):
    return mk_var(name, STRING)


def lift(value, sort_hint=None):
    """Lift a Python value to a constant term; terms pass through."""
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        return mk_const(value, BOOL)
    if isinstance(value, int):
        if sort_hint == REAL:
            return mk_const(Fraction(value), REAL)
        return mk_const(value, INT)
    if isinstance(value, Fraction):
        return mk_const(value, REAL)
    if isinstance(value, float):
        return mk_const(Fraction(value).limit_denominator(10**9), REAL)
    if isinstance(value, str):
        return mk_const(value, STRING)
    raise TypeError(f"cannot lift {value!r} to a term")


def _lifted(op, *args):
    # Most call sites pass Terms already; only lift the stragglers, and
    # dispatch straight to the typecheck handler (every op here is
    # already canonical, so the alias/error layer of ``app`` is skipped;
    # non-Term failures still surface through ``app``).
    try:
        return _HANDLERS[op](op, [a if isinstance(a, Term) else lift(a) for a in args])
    except AttributeError:
        return app(op, *[a if isinstance(a, Term) else lift(a) for a in args])


# Core ----------------------------------------------------------------------


def not_(a):
    return _lifted("not", a)


def and_(*args):
    return _lifted("and", *args)


def or_(*args):
    return _lifted("or", *args)


def xor(*args):
    return _lifted("xor", *args)


def implies(a, b):
    return _lifted("=>", a, b)


def eq(*args):
    return _lifted("=", *args)


def distinct(*args):
    return _lifted("distinct", *args)


def ite(c, a, b):
    return _lifted("ite", c, a, b)


# Arithmetic ------------------------------------------------------------------


def add(*args):
    return _lifted("+", *args)


def sub(*args):
    return _lifted("-", *args)


def neg(a):
    return _lifted("-", a)


def mul(*args):
    return _lifted("*", *args)


def div(a, b):
    """Real division ``(/ a b)``."""
    return _lifted("/", a, b)


def idiv(a, b):
    """Integer division ``(div a b)``."""
    return _lifted("div", a, b)


def mod(a, b):
    return _lifted("mod", a, b)


def abs_(a):
    return _lifted("abs", a)


def lt(a, b):
    return _lifted("<", a, b)


def le(a, b):
    return _lifted("<=", a, b)


def gt(a, b):
    return _lifted(">", a, b)


def ge(a, b):
    return _lifted(">=", a, b)


def to_real(a):
    return _lifted("to_real", a)


def to_int(a):
    return _lifted("to_int", a)


# Strings -----------------------------------------------------------------


def concat(*args):
    return _lifted("str.++", *args)


def length(a):
    return _lifted("str.len", a)


def at(a, i):
    return _lifted("str.at", a, i)


def substr(a, offset, count):
    return _lifted("str.substr", a, offset, count)


def indexof(a, b, i):
    return _lifted("str.indexof", a, b, i)


def replace(a, b, c):
    return _lifted("str.replace", a, b, c)


def prefixof(a, b):
    return _lifted("str.prefixof", a, b)


def suffixof(a, b):
    return _lifted("str.suffixof", a, b)


def contains(a, b):
    return _lifted("str.contains", a, b)


def str_to_int(a):
    return _lifted("str.to.int", a)


def str_from_int(a):
    return _lifted("str.from.int", a)


def in_re(s, r):
    return _lifted("str.in.re", s, r)


def to_re(s):
    return _lifted("str.to.re", s)


# Regular expressions -------------------------------------------------------


def re_none():
    return _lifted("re.none")


def re_all():
    return _lifted("re.all")


def re_allchar():
    return _lifted("re.allchar")


def re_concat(*args):
    return _lifted("re.++", *args)


def re_union(*args):
    return _lifted("re.union", *args)


def re_inter(*args):
    return _lifted("re.inter", *args)


def re_star(a):
    return _lifted("re.*", a)


def re_plus(a):
    return _lifted("re.+", a)


def re_opt(a):
    return _lifted("re.opt", a)


def re_comp(a):
    return _lifted("re.comp", a)


def re_range(lo, hi):
    return _lifted("re.range", lo, hi)


# Bit-vectors ---------------------------------------------------------------


def bv_var(name, width):
    from repro.smtlib.sorts import bitvec_sort

    return mk_var(name, bitvec_sort(width))


def bv(value, width):
    from repro.smtlib.bitvec import bv_const

    return bv_const(value, width)


def bvadd(a, b):
    return _lifted("bvadd", a, b)


def bvsub(a, b):
    return _lifted("bvsub", a, b)


def bvmul(a, b):
    return _lifted("bvmul", a, b)


def bvand(a, b):
    return _lifted("bvand", a, b)


def bvor(a, b):
    return _lifted("bvor", a, b)


def bvxor(a, b):
    return _lifted("bvxor", a, b)


def bvnot(a):
    return _lifted("bvnot", a)


def bvneg(a):
    return _lifted("bvneg", a)


def bvshl(a, b):
    return _lifted("bvshl", a, b)


def bvlshr(a, b):
    return _lifted("bvlshr", a, b)


def bvult(a, b):
    return _lifted("bvult", a, b)


def bvule(a, b):
    return _lifted("bvule", a, b)


def bv_concat(a, b):
    return _lifted("concat", a, b)


def bv_extract(high, low, a):
    from repro.smtlib.bitvec import extract_op
    from repro.smtlib.typecheck import app

    return app(extract_op(high, low), a if isinstance(a, Term) else lift(a))


# Quantifiers ---------------------------------------------------------------


def forall(bindings, body):
    """``bindings`` is a list of (name, Sort) or Var."""
    return mk_quantifier("forall", _normalize_bindings(bindings), lift(body))


def exists(bindings, body):
    return mk_quantifier("exists", _normalize_bindings(bindings), lift(body))


def _normalize_bindings(bindings):
    out = []
    for binding in bindings:
        if isinstance(binding, Var):
            out.append((binding.name, binding.sort))
        else:
            out.append(tuple(binding))
    return tuple(out)
