"""SMT-LIB v2 frontend: sorts, terms, lexer, parser, type checker, printers."""

from repro.smtlib.sorts import BOOL, INT, REAL, STRING, REGLAN, Sort
from repro.smtlib.ast import (
    App,
    Assert,
    CheckSat,
    Command,
    Const,
    DeclareFun,
    DefineFun,
    Exit,
    GetModel,
    Quantifier,
    Script,
    SetInfo,
    SetLogic,
    SetOption,
    Term,
    Var,
    fresh_name,
    fresh_scope,
    intern_stats,
    mk_app,
    mk_const,
    mk_quantifier,
    mk_var,
    reset_intern_stats,
)
from repro.smtlib.parser import parse_script, parse_term
from repro.smtlib.printer import print_script, print_term

# Importing the package completes the theory registry: typecheck (via
# parser above) registers core/arithmetic/strings, and this import adds
# bitvectors, so every consumer of repro.smtlib sees all theories.
from repro.smtlib import bitvec as _bitvec  # noqa: F401  (registration)

__all__ = [
    "BOOL",
    "INT",
    "REAL",
    "STRING",
    "REGLAN",
    "Sort",
    "Term",
    "Const",
    "Var",
    "App",
    "Quantifier",
    "Command",
    "Script",
    "Assert",
    "CheckSat",
    "DeclareFun",
    "DefineFun",
    "Exit",
    "GetModel",
    "SetInfo",
    "SetLogic",
    "SetOption",
    "mk_const",
    "mk_var",
    "mk_app",
    "mk_quantifier",
    "fresh_name",
    "fresh_scope",
    "intern_stats",
    "reset_intern_stats",
    "parse_script",
    "parse_term",
    "print_script",
    "print_term",
]
