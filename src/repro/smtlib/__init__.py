"""SMT-LIB v2 frontend: sorts, terms, lexer, parser, type checker, printers."""

from repro.smtlib.sorts import BOOL, INT, REAL, STRING, REGLAN, Sort
from repro.smtlib.ast import (
    App,
    Assert,
    CheckSat,
    Command,
    Const,
    DeclareFun,
    DefineFun,
    Exit,
    GetModel,
    Quantifier,
    Script,
    SetInfo,
    SetLogic,
    SetOption,
    Term,
    Var,
)
from repro.smtlib.parser import parse_script, parse_term
from repro.smtlib.printer import print_script, print_term

__all__ = [
    "BOOL",
    "INT",
    "REAL",
    "STRING",
    "REGLAN",
    "Sort",
    "Term",
    "Const",
    "Var",
    "App",
    "Quantifier",
    "Command",
    "Script",
    "Assert",
    "CheckSat",
    "DeclareFun",
    "DefineFun",
    "Exit",
    "GetModel",
    "SetInfo",
    "SetLogic",
    "SetOption",
    "parse_script",
    "parse_term",
    "print_script",
    "print_term",
]
