"""Syntactic extraction of integer bounds from quantifier guards.

Recognizes the pattern ``forall (x Int) (=> guard body)`` where the
guard conjunction pins ``lo <= x <= hi`` with integer constants —
the "bounded universal" fragment both the preprocessor (expansion)
and the evaluator (exact finite checking) support.
"""

from __future__ import annotations

from repro.smtlib.ast import App, Const, Var
from repro.smtlib.sorts import INT


def bound_from_atom(atom, name):
    """Extract a bound from a comparison atom.

    Returns ``("lo", value)`` / ``("hi", value)`` or ``None``.
    """
    if not (isinstance(atom, App) and atom.op in ("<", "<=", ">", ">=")):
        return None
    if len(atom.args) != 2:
        return None
    a, b = atom.args
    if isinstance(a, Var) and a.name == name and isinstance(b, Const) and b.sort == INT:
        value = int(b.value)
        if atom.op == "<=":
            return ("hi", value)
        if atom.op == "<":
            return ("hi", value - 1)
        if atom.op == ">=":
            return ("lo", value)
        return ("lo", value + 1)
    if isinstance(b, Var) and b.name == name and isinstance(a, Const) and a.sort == INT:
        value = int(a.value)
        if atom.op == "<=":
            return ("lo", value)
        if atom.op == "<":
            return ("lo", value + 1)
        if atom.op == ">=":
            return ("hi", value)
        return ("hi", value - 1)
    return None


def guarded_integer_bounds(quantifier):
    """Bounds for every binding of a guarded integer quantifier.

    For ``forall (x1 Int ... xn Int) (=> guard body)`` returns
    ``{name: (lo, hi)}`` when every binding is Int and has both bounds
    in the guard conjunction; otherwise ``None``.
    """
    body = quantifier.body
    if not (isinstance(body, App) and body.op == "=>"):
        return None
    guard_atoms = []
    for guard in body.args[:-1]:
        if isinstance(guard, App) and guard.op == "and":
            guard_atoms.extend(guard.args)
        else:
            guard_atoms.append(guard)
    bounds = {}
    for name, sort in quantifier.bindings:
        if sort != INT:
            return None
        lo = hi = None
        for atom in guard_atoms:
            pair = bound_from_atom(atom, name)
            if pair is None:
                continue
            kind, value = pair
            if kind == "lo":
                lo = value if lo is None else max(lo, value)
            else:
                hi = value if hi is None else min(hi, value)
        if lo is None or hi is None:
            return None
        bounds[name] = (lo, hi)
    return bounds
