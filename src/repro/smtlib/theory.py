"""The theory registry: the single plug-point for SMT theories.

Before this module, theory knowledge was scattered across the stack —
the typecheck dispatch table knew the operators, the evaluator knew the
lazy connectives, the string solver kept its own operator set, tseitin
hard-coded the boolean connectives, triage hard-coded which operators
are expensive, and the fusion/seed/fault layers each listed the sorts
they understood. Adding a theory meant editing all of them in sync.

Now each theory registers one :class:`Theory` record describing what it
contributes, and every consumer derives its tables from the registry:

- ``smtlib.typecheck`` merges the per-theory handler tables into its
  dispatch table (handler *identity* defines the OpFuzz type-equivalence
  classes, so two operators registered with the same handler object are
  mutation partners);
- ``semantics.evaluator`` takes its lazy-connective set and per-theory
  evaluation hooks from here;
- ``solver.tseitin`` takes the boolean connectives, ``solver.strings``
  its operator set, and ``solver.dpllt`` routes theory literals to the
  backend named by the owning theory;
- ``campaign.triage`` takes the difficulty-feature operator sets;
- ``core.fusion`` takes the fusible sorts (in registration order, so
  appending a theory never perturbs existing RNG draw sequences);
- the parser/printer consult the indexed-sort constructors, indexed
  operators, literal hooks and constant printers.

Registration happens at import of :mod:`repro.smtlib` (the package
``__init__`` imports ``typecheck`` — core/arithmetic/strings — then
``bitvec``), so every consumer that imports anything under
``repro.smtlib`` sees the complete registry. The merged tables exposed
here are *live* objects updated in place by :func:`register_theory`;
consumers may hold references, and cache derived structures against
:func:`registry_version`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError


class TheoryError(ReproError):
    """A theory registration conflicts with an existing one."""


@dataclass(frozen=True)
class Theory:
    """One theory's contribution to the stack.

    ``handlers`` maps canonical operator names to typecheck handlers;
    sharing a handler object between two operators declares them
    type-equivalent (OpFuzz mutation partners). ``solver_backend`` names
    the DPLL(T) theory backend that decides this theory's literals
    (``"nonlinear"``, ``"strings"``, ``"bitblast"``; empty for the
    boolean core, which the SAT layer handles itself).
    """

    name: str
    sorts: tuple = ()
    handlers: dict = field(default_factory=dict)
    aliases: dict = field(default_factory=dict)
    lazy_ops: tuple = ()
    connectives: tuple = ()
    hard_mul_ops: tuple = ()
    hard_div_ops: tuple = ()
    fusible_sorts: tuple = ()
    fusion_schemes: tuple = ()
    logics: tuple = ()
    seed_families: tuple = ()
    solver_backend: str = ""

    @property
    def ops(self):
        """The theory's canonical operator names, sorted."""
        return tuple(sorted(self.handlers))


_THEORIES = {}  # name -> Theory, insertion-ordered (registration order)

# Live merged tables: mutated in place on registration so consumers may
# hold direct references (e.g. typecheck's dispatch dict).
_HANDLER_TABLE = {}
_ALIAS_TABLE = {}
_ALL_OPS = set()
_OP_THEORY = {}

# Syntax/semantics hooks for theories whose literals or operators do
# not fit the fixed lexer/parser/printer/evaluator grammar.
_CONST_PRINTERS = []  # (sort_predicate, fn(value, sort) -> str)
_EVAL_HOOKS = []  # (op_predicate, fn(op, args, term, model) -> value)
_LITERAL_HOOKS = []  # fn(token_text) -> Const | None
_INDEXED_SORTS = {}  # head symbol, e.g. "BitVec" -> fn(*indices) -> Sort
_INDEXED_OPS = []  # (op_prefix, handler(op, args) -> Term)

_VERSION = 0


def _bump():
    global _VERSION
    _VERSION += 1


def registry_version():
    """A counter bumped on every registration (for derived-table caches)."""
    return _VERSION


def register_theory(theory):
    """Register a theory; raises :class:`TheoryError` on any collision."""
    if theory.name in _THEORIES:
        raise TheoryError(f"theory {theory.name!r} already registered")
    for op in theory.handlers:
        if op in _HANDLER_TABLE:
            raise TheoryError(
                f"operator {op!r} of theory {theory.name!r} already "
                f"belongs to theory {_OP_THEORY[op]!r}"
            )
    for alias, target in theory.aliases.items():
        if alias in _ALIAS_TABLE and _ALIAS_TABLE[alias] != target:
            raise TheoryError(f"alias {alias!r} already maps to {_ALIAS_TABLE[alias]!r}")
    _THEORIES[theory.name] = theory
    _HANDLER_TABLE.update(theory.handlers)
    _ALIAS_TABLE.update(theory.aliases)
    _ALL_OPS.update(theory.handlers)
    for op in theory.handlers:
        _OP_THEORY[op] = theory.name
    _bump()
    return theory


def theories():
    """All registered theories, in registration order."""
    return tuple(_THEORIES.values())


def theory(name):
    """The registered theory called ``name`` (KeyError if absent)."""
    return _THEORIES[name]


def theory_names():
    """Registered theory names, in registration order."""
    return tuple(_THEORIES)


def value_theories():
    """Theories contributing value sorts/logics (everything but core)."""
    return tuple(t for t in _THEORIES.values() if t.logics)


def op_theory(op):
    """The name of the theory owning canonical operator ``op``, or ``""``."""
    return _OP_THEORY.get(op, "")


def handler_table():
    """The live merged op -> typecheck-handler dict."""
    return _HANDLER_TABLE


def alias_table():
    """The live merged alias -> canonical-op dict."""
    return _ALIAS_TABLE


def all_ops():
    """The live set of all canonical operator names."""
    return _ALL_OPS


def theory_ops(name):
    """The operator set of one theory, as a frozenset."""
    return frozenset(_THEORIES[name].handlers)


def lazy_ops():
    """Operators the evaluator must short-circuit, across all theories."""
    out = []
    for t in _THEORIES.values():
        out.extend(t.lazy_ops)
    return frozenset(out)


def connectives():
    """Boolean-structure operators the tseitin layer may decompose."""
    out = []
    for t in _THEORIES.values():
        out.extend(t.connectives)
    return frozenset(out)


def hard_mul_ops():
    """Operators that make a term nonlinear-hard via non-constant factors."""
    out = []
    for t in _THEORIES.values():
        out.extend(t.hard_mul_ops)
    return frozenset(out)


def hard_div_ops():
    """Operators that are hard when their second argument is non-constant."""
    out = []
    for t in _THEORIES.values():
        out.extend(t.hard_div_ops)
    return frozenset(out)


def fusible_sorts():
    """Sorts the fusion layer may pair variables over, in registration
    order (appending a theory never reorders existing draws)."""
    out = []
    for t in _THEORIES.values():
        out.extend(t.fusible_sorts)
    return tuple(out)


def supported_logics():
    """All logic names contributed by registered theories, sorted."""
    out = set()
    for t in _THEORIES.values():
        out.update(t.logics)
    return tuple(sorted(out))


def backend_for_sort(sort):
    """The solver backend owning ``sort``, or ``""`` if none claims it."""
    for t in _THEORIES.values():
        if sort in t.sorts or any(sort == s for s in t.fusible_sorts):
            if t.solver_backend:
                return t.solver_backend
    return ""


# -- syntax/semantics hooks ------------------------------------------------


def register_const_printer(predicate, printer):
    """Register a constant printer: ``printer(value, sort) -> str`` for
    sorts accepted by ``predicate(sort)``."""
    _CONST_PRINTERS.append((predicate, printer))
    _bump()


def const_printer_for(sort):
    """The registered constant printer for ``sort``, or ``None``."""
    for predicate, printer in _CONST_PRINTERS:
        if predicate(sort):
            return printer
    return None


def register_eval_hook(predicate, evaluator):
    """Register an evaluation hook: ``evaluator(op, args, term, model)``
    for canonical operators accepted by ``predicate(op)``."""
    _EVAL_HOOKS.append((predicate, evaluator))
    _bump()


def evaluator_for(op):
    """The registered evaluation hook handling ``op``, or ``None``."""
    for predicate, evaluator in _EVAL_HOOKS:
        if predicate(op):
            return evaluator
    return None


def register_literal_hook(hook):
    """Register a literal parser: ``hook(text) -> Const | None`` for
    symbol tokens the fixed atom grammar does not recognize."""
    _LITERAL_HOOKS.append(hook)
    _bump()


def parse_literal(text):
    """The constant a registered literal hook decodes from ``text``, or
    ``None`` if no hook claims it."""
    for hook in _LITERAL_HOOKS:
        const = hook(text)
        if const is not None:
            return const
    return None


def register_indexed_sort(head, constructor):
    """Register an indexed sort family: ``(_ head i...)`` parses via
    ``constructor(*indices)``."""
    if head in _INDEXED_SORTS:
        raise TheoryError(f"indexed sort {head!r} already registered")
    _INDEXED_SORTS[head] = constructor
    _bump()


def indexed_sort(head, indices):
    """Build the indexed sort ``(_ head i...)``; KeyError if unknown."""
    return _INDEXED_SORTS[head](*indices)


def is_indexed_sort_head(head):
    """True if ``head`` names a registered indexed sort family."""
    return head in _INDEXED_SORTS


def register_indexed_op(prefix, handler):
    """Register an indexed operator family, spelled ``(_ name i...)`` and
    carried as the full op string; ``handler(op, args)`` typechecks it."""
    _INDEXED_OPS.append((prefix, handler))
    _bump()


def indexed_handler_for(op):
    """The typecheck handler of an indexed operator spelling, or ``None``."""
    for prefix, handler in _INDEXED_OPS:
        if op.startswith(prefix):
            return handler
    return None


def is_indexed_op(op):
    """True if ``op`` is a registered indexed-operator spelling."""
    return indexed_handler_for(op) is not None
