"""Tokenizer for the SMT-LIB v2 concrete syntax.

Produces a flat stream of tokens; comments (``;`` to end of line) are
skipped. String literals use the SMT-LIB 2.6 convention where ``""``
inside a literal denotes one double quote.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

LPAREN = "lparen"
RPAREN = "rparen"
SYMBOL = "symbol"
NUMERAL = "numeral"
DECIMAL = "decimal"
STRING = "string"
KEYWORD = "keyword"


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int


_SYMBOL_EXTRA = set("~!@$%^&*_-+=<>.?/")


def _is_symbol_char(ch):
    return ch.isalnum() or ch in _SYMBOL_EXTRA


def tokenize(text):
    """Tokenize SMT-LIB source text into a list of :class:`Token`."""
    tokens = []
    i = 0
    line = 1
    line_start = 0
    n = len(text)
    while i < n:
        ch = text[i]
        col = i - line_start + 1
        if ch == "\n":
            line += 1
            line_start = i + 1
            i += 1
        elif ch.isspace():
            i += 1
        elif ch == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "(":
            tokens.append(Token(LPAREN, "(", line, col))
            i += 1
        elif ch == ")":
            tokens.append(Token(RPAREN, ")", line, col))
            i += 1
        elif ch == '"':
            i, literal = _scan_string(text, i, line, col)
            tokens.append(Token(STRING, literal, line, col))
        elif ch == "|":
            end = text.find("|", i + 1)
            if end < 0:
                raise ParseError("unterminated quoted symbol", line, col)
            tokens.append(Token(SYMBOL, text[i + 1 : end], line, col))
            i = end + 1
        elif ch == ":":
            j = i + 1
            while j < n and _is_symbol_char(text[j]):
                j += 1
            tokens.append(Token(KEYWORD, text[i:j], line, col))
            i = j
        elif ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            if j < n and text[j] == ".":
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
                tokens.append(Token(DECIMAL, text[i:j], line, col))
            else:
                tokens.append(Token(NUMERAL, text[i:j], line, col))
            i = j
        elif ch == "#":
            # Bitvector literals (#b0101, #xAF) are symbol-shaped tokens;
            # the parser decodes them via the theory registry's literal
            # hooks.
            j = i + 1
            while j < n and _is_symbol_char(text[j]):
                j += 1
            if j == i + 1:
                raise ParseError("dangling '#'", line, col)
            tokens.append(Token(SYMBOL, text[i:j], line, col))
            i = j
        elif _is_symbol_char(ch):
            j = i
            while j < n and _is_symbol_char(text[j]):
                j += 1
            tokens.append(Token(SYMBOL, text[i:j], line, col))
            i = j
        else:
            raise ParseError(f"unexpected character {ch!r}", line, col)
    return tokens


def _scan_string(text, i, line, col):
    """Scan a string literal starting at ``text[i] == '"'``.

    Returns ``(next_index, decoded_value)``.
    """
    n = len(text)
    j = i + 1
    out = []
    while j < n:
        ch = text[j]
        if ch == '"':
            if j + 1 < n and text[j + 1] == '"':
                out.append('"')
                j += 2
            else:
                return j + 1, "".join(out)
        else:
            # SMT-LIB 2.6: backslash is an ordinary character inside
            # string literals; only "" escapes a quote.
            out.append(ch)
            j += 1
    raise ParseError("unterminated string literal", line, col)
