"""Exception hierarchy shared across the package."""


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SmtLibError(ReproError):
    """Malformed SMT-LIB input (lexing, parsing, or command structure)."""


class ParseError(SmtLibError):
    """Syntax error while parsing SMT-LIB text.

    Carries the 1-based ``line`` and ``column`` of the offending token.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SortError(SmtLibError):
    """A term is ill-sorted (wrong operator arity or argument sorts)."""


class EvaluationError(ReproError):
    """A term could not be evaluated under the given model."""


class MutationError(ReproError):
    """A mutation strategy could not produce a mutant for this draw.

    The generic failure of the strategy pipeline: a strategy that
    cannot mutate the selected seed(s) raises this (or a subclass) and
    the campaign loop counts the iteration as a mutation failure and
    moves on. :class:`FusionError` subclasses it, so pre-pipeline code
    that catches ``FusionError`` keeps working unchanged.
    """


class FusionError(MutationError):
    """Semantic Fusion could not be applied (e.g. no fusible variable pair)."""


class ReductionError(ReproError):
    """The formula reducer was driven with an inconsistent oracle."""
