"""ConcatFuzz: the RQ4 ablation baseline.

ConcatFuzz performs only step (1) of Semantic Fusion — formula
concatenation (conjunction for satisfiable seeds, disjunction for
unsatisfiable seeds) — with variable fusion and inversion disabled. The
paper uses it to show that the core technique, not mere concatenation,
is responsible for YinYang's bug finding (only 5/50 bugs retriggered).
"""

from __future__ import annotations

from repro.core.fusion import _assemble, _conjoin, _merged_declarations, _rename_apart
from repro.errors import FusionError
from repro.smtlib import builder as b


def concat_scripts(oracle, phi1, phi2):
    """Concatenate two equisatisfiable scripts without fusing variables.

    Satisfiable seeds are conjoined (assert blocks merged);
    unsatisfiable seeds are disjoined. Satisfiability is preserved.
    """
    if oracle not in ("sat", "unsat"):
        raise FusionError(f"oracle must be 'sat' or 'unsat', got {oracle!r}")
    asserts1 = list(phi1.asserts)
    asserts2, phi2_decls, _, _ = _rename_apart(phi1, phi2)
    declarations = _merged_declarations(phi1, phi2_decls, ())
    if oracle == "sat":
        fused_asserts = asserts1 + asserts2
    else:
        fused_asserts = [b.or_(_conjoin(asserts1), _conjoin(asserts2))]
    return _assemble(None, declarations, fused_asserts)
