"""YinYang's main process (the paper's Algorithm 1), strategy-agnostic.

The loop repeatedly asks a pluggable
:class:`~repro.strategies.base.MutationStrategy` for one mutant — for
the default Semantic Fusion strategy: draw two random seeds of the same
satisfiability and fuse them — and feeds the mutant to each solver
under test:

- a solver **crash** (abnormal termination / internal error) is a crash
  bug;
- a definite answer **inconsistent with the oracle** is a soundness bug;
- a check exceeding the performance threshold is recorded as a
  performance issue (the paper found these during reduction);
- ``unknown`` is either ignored or treated as a crash, per config.

The loop knows nothing about fusion: seed drawing, mutation, and the
expected-verdict discipline all live behind the strategy interface
(:mod:`repro.strategies`), and the answer-classification tail lives in
the shared checker (:mod:`repro.core.checker`). An AST lint
(``tests/test_ast_lint.py``) pins this by forbidding
``repro.core.fusion`` / ``repro.core.concatfuzz`` imports here.

Everything is deterministic given the config seed, *independent of the
execution mode*: each iteration draws its randomness from a private RNG
seeded by ``(campaign seed, iteration index)`` and builds its mutant
inside its own fresh-name scope, so iteration ``k`` produces the same
mutated script whether it runs alone, interleaved with others on a
thread pool, or on shard 3 of a process pool. Parallel modes merely
partition the index space ``range(iterations)`` across workers and
merge the partial reports back in index order — the bug records of a
run are a pure function of ``(strategy, seed, iterations)``.

Two parallel modes are offered: ``thread`` (the paper's "YinYang is
able to run in multiple-threaded mode"; cheap, but GIL-bound for the
pure-Python solvers under test) and ``process`` (a persistent
spawn-safe worker pool where each worker owns its solver instances and
caches; see :mod:`repro.core.parallel`).
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

# Classification constants and BugRecord moved to the shared checker;
# re-exported here because journal/campaign/tests import them from this
# module (the stable public surface).
from repro.core.checker import (  # noqa: F401
    CRASH,
    HARNESS,
    PERFORMANCE,
    SOUNDNESS,
    UNKNOWN_BUG,
    BugRecord,
    check_mutant,
)
from repro.core.checker import HARNESS_ERROR_KIND as _HARNESS_ERROR_KIND  # noqa: F401
from repro.core.checker import QUARANTINED_KIND as _QUARANTINED_KIND  # noqa: F401
from repro.core.config import YinYangConfig
from repro.errors import MutationError
from repro.observability.telemetry import NULL_TELEMETRY, attach_telemetry
from repro.smtlib.ast import fresh_scope
from repro.strategies.fusion import FusionStrategy, MixedFusionStrategy
from repro.strategies.registry import make_strategy

EXECUTION_MODES = ("serial", "thread", "process")


def iteration_rng(seed, index):
    """The private RNG of iteration ``index`` under campaign ``seed``.

    Seeded through the string path of :class:`random.Random`, which
    hashes via SHA-512 — deterministic across processes and Python
    hash-randomization settings (a tuple seed would go through
    ``hash()`` and could differ between interpreter runs).
    """
    return random.Random(f"yinyang:{seed}:{index}")


@dataclass
class YinYangReport:
    """Outcome of a testing run: Algorithm 1's ``incorrects``/``crashes``."""

    iterations: int = 0
    fused: int = 0
    elapsed: float = 0.0
    bugs: list = field(default_factory=list)
    fusion_failures: int = 0
    unknowns: int = 0
    # Harness-resilience counters (populated when solvers are guarded).
    retries: int = 0
    timeouts: int = 0
    contained_errors: int = 0
    quarantine_skips: int = 0
    quarantined: set = field(default_factory=set)
    # The unknown-kind split (ISSUE 7 satellite): every ``unknown`` is
    # counted once above *and* once here as budget-bounded or genuine.
    # ``unknowns`` may additionally include oracle-unresolved skips, so
    # budget + genuine <= unknowns.
    unknowns_budget: int = 0
    unknowns_genuine: int = 0

    @property
    def incorrects(self):
        return [b for b in self.bugs if b.kind == SOUNDNESS]

    @property
    def crashes(self):
        return [b for b in self.bugs if b.kind == CRASH]

    @property
    def performance_issues(self):
        return [b for b in self.bugs if b.kind == PERFORMANCE]

    @property
    def harness_errors(self):
        return [b for b in self.bugs if b.kind == HARNESS]

    @property
    def throughput(self):
        """Fused formulas per second (the paper reports 41.5/s)."""
        if self.elapsed <= 0:
            return 0.0
        return self.fused / self.elapsed

    def merge(self, other):
        self.iterations += other.iterations
        self.fused += other.fused
        self.elapsed = max(self.elapsed, other.elapsed)
        self.bugs.extend(other.bugs)
        self.fusion_failures += other.fusion_failures
        self.unknowns += other.unknowns
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.contained_errors += other.contained_errors
        self.quarantine_skips += other.quarantine_skips
        self.quarantined |= other.quarantined
        self.unknowns_budget += other.unknowns_budget
        self.unknowns_genuine += other.unknowns_genuine

    def summary(self):
        text = (
            f"{self.iterations} iterations, {self.fused} fused formulas, "
            f"{len(self.incorrects)} soundness, {len(self.crashes)} crash, "
            f"{len(self.performance_issues)} performance"
        )
        extras = []
        if self.retries:
            extras.append(f"{self.retries} retries")
        if self.timeouts:
            extras.append(f"{self.timeouts} timeouts")
        if self.contained_errors:
            extras.append(f"{self.contained_errors} contained errors")
        if self.quarantined:
            extras.append("quarantined: " + ", ".join(sorted(self.quarantined)))
        if extras:
            text += " (" + "; ".join(extras) + ")"
        return text

    def counters(self):
        """Deterministic summary counters (everything but wall-clock).

        Field names are part of the journal format (``fused`` counts
        successful mutants of *any* strategy, ``fusion_failures`` counts
        :class:`~repro.errors.MutationError` draws) — renaming them
        would break byte-compatibility with existing journals.
        """
        return {
            "iterations": self.iterations,
            "fused": self.fused,
            "fusion_failures": self.fusion_failures,
            "unknowns": self.unknowns,
            "soundness": len(self.incorrects),
            "crash": len(self.crashes),
            "performance": len(self.performance_issues),
            "bugs": len(self.bugs),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "contained_errors": self.contained_errors,
            "quarantine_skips": self.quarantine_skips,
            "unknowns_budget": self.unknowns_budget,
            "unknowns_genuine": self.unknowns_genuine,
        }


def merge_shard_reports(reports):
    """Merge per-shard reports into one, independent of the sharding.

    Counters are summed, ``elapsed`` is the slowest shard (shards run
    concurrently), and bug records are re-ordered by their global
    iteration id — so merging the shards of any worker count yields the
    exact report a single worker would have produced (modulo
    wall-clock).
    """
    merged = YinYangReport()
    for report in reports:
        merged.iterations += report.iterations
        merged.fused += report.fused
        merged.elapsed = max(merged.elapsed, report.elapsed)
        merged.bugs.extend(report.bugs)
        merged.fusion_failures += report.fusion_failures
        merged.unknowns += report.unknowns
        merged.retries += report.retries
        merged.timeouts += report.timeouts
        merged.contained_errors += report.contained_errors
        merged.quarantine_skips += report.quarantine_skips
        merged.quarantined |= report.quarantined
        merged.unknowns_budget += report.unknowns_budget
        merged.unknowns_genuine += report.unknowns_genuine
    merged.bugs.sort(key=lambda b: b.iteration)  # stable: intra-iteration order kept
    return merged


def shard_indices(iterations, shard, of):
    """The iteration ids shard ``shard`` of ``of`` runs (strided, balanced)."""
    return range(shard, iterations, of)


class YinYang:
    """The YinYang testing tool.

    ``solvers`` is one solver or a list; each must expose ``name`` and
    ``check_script(script) -> CheckOutcome`` and may raise
    :class:`~repro.solver.result.SolverCrash`.

    ``strategy`` selects the mutation workload: ``None`` (the default
    Semantic Fusion strategy, built from ``config.fusion``), a registry
    name such as ``"fusion"``/``"concatfuzz"``/``"opfuzz"``, or a
    ready :class:`~repro.strategies.base.MutationStrategy` instance.

    ``policy`` (a :class:`~repro.robustness.policy.ResiliencePolicy`)
    wraps every solver in a
    :class:`~repro.robustness.guard.GuardedSolver`: per-check watchdog
    deadlines, transient-failure retries, containment of unexpected
    exceptions as harness-error bug records, and quarantine of solvers
    that crash repeatedly. Without a policy the loop behaves exactly as
    before (no guard overhead).
    """

    def __init__(
        self,
        solvers,
        config=None,
        performance_threshold=None,
        policy=None,
        telemetry=None,
        strategy=None,
    ):
        solvers = solvers if isinstance(solvers, (list, tuple)) else [solvers]
        if policy is not None:
            # Imported lazily: repro.robustness imports this module.
            from repro.robustness.guard import GuardedSolver

            solvers = [
                s if isinstance(s, GuardedSolver) else GuardedSolver(s, policy)
                for s in solvers
            ]
        self.solvers = list(solvers)
        self.config = config or YinYangConfig()
        self.performance_threshold = performance_threshold
        self.policy = policy
        if strategy is None:
            strategy = FusionStrategy(self.config.fusion)
        elif isinstance(strategy, str):
            strategy = make_strategy(strategy, self.config.fusion)
        self.strategy = strategy
        # Telemetry observes and never steers: it draws no randomness
        # and the loop's control flow is identical with it on or off.
        # The null singleton keeps the hot path branch-free.
        self.telemetry = telemetry
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        if telemetry is not None:
            attach_telemetry(self.solvers, telemetry)

    # -- Algorithm 1 -----------------------------------------------------

    def test(
        self,
        oracle,
        seeds,
        iterations=None,
        threads=1,
        mode=None,
        workers=None,
        solver_factory=None,
    ):
        """Run the main loop over ``seeds`` (all labeled ``oracle``).

        ``seeds`` is a list of Scripts or
        :class:`~repro.core.oracle.LabeledSeed`. Returns a
        :class:`YinYangReport`.

        ``mode`` is ``"serial"``, ``"thread"``, or ``"process"`` (see
        the module docstring); ``workers`` is the shard count. The
        legacy ``threads=N`` spelling is kept as an alias for
        ``mode="thread", workers=N``. All modes and worker counts yield
        identical bug records for a fixed config seed. ``process`` mode
        needs ``solver_factory`` — a picklable zero-argument callable
        returning the solver list — because live solver objects (locks,
        caches) do not cross a spawn boundary; the strategy crosses it
        as its registry name.
        """
        scripts = [getattr(s, "script", s) for s in seeds]
        logics = [getattr(s, "logic", "") for s in seeds]
        if len(scripts) < 1:
            raise ValueError("need at least one seed")
        iterations = iterations if iterations is not None else self.config.max_iterations
        if mode is None:
            mode = "thread" if threads > 1 else "serial"
            workers = threads if workers is None else workers
        if mode not in EXECUTION_MODES:
            raise ValueError(f"mode must be one of {EXECUTION_MODES}, got {mode!r}")
        workers = max(1, workers if workers is not None else 1)
        if mode == "process":
            from repro.core.parallel import run_sharded_test

            return run_sharded_test(
                solver_factory=solver_factory,
                config=self.config,
                performance_threshold=self.performance_threshold,
                policy=self.policy,
                oracle=oracle,
                seeds=seeds,
                iterations=iterations,
                workers=workers,
                telemetry=self.telemetry,
                strategy=self.strategy.name,
            )
        work = self.strategy.prepare(oracle, scripts, logics)
        if mode == "serial" or workers <= 1:
            return self._run_prepared(self.strategy, work, range(iterations))
        # Thread mode: partition the iteration index space (strided, so
        # worker t runs iterations t, t+W, t+2W, ...) and merge the
        # partial reports back in index order. Per-iteration RNGs and
        # fresh-name scopes make every iteration self-contained, so the
        # partition never changes what any iteration computes. The work
        # item is immutable and shared across shards.
        with ThreadPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    self._run_prepared,
                    self.strategy,
                    work,
                    shard_indices(iterations, t, workers),
                )
                for t in range(workers)
                if len(shard_indices(iterations, t, workers)) > 0
            ]
            return merge_shard_reports([future.result() for future in futures])

    def run_iterations(
        self, oracle, scripts, logics, indices, seed=None, work=None, session=None
    ):
        """Run the iterations whose global ids are in ``indices``.

        This is the sharding primitive: a full run is
        ``run_iterations(..., range(n))``, and any partition of
        ``range(n)`` across workers merges back (via
        :func:`merge_shard_reports`) to the same report. Callers that
        split one shard into many small index batches (the supervised
        per-iteration loop) pass a pre-built ``work`` item so the
        strategy's preparation cost is paid once, not per batch — and,
        with incremental solving on, a pre-built ``session`` so the
        cell's solver session outlives the batches (its lifetime is the
        lease, see :mod:`repro.core.parallel`).
        """
        if work is None:
            work = self.strategy.prepare(oracle, scripts, logics)
        return self._run_prepared(self.strategy, work, indices, seed, session)

    def prepare_work(self, oracle, scripts, logics):
        """Pre-build the strategy work item for repeated ``run_iterations``."""
        return self.strategy.prepare(oracle, scripts, logics)

    def make_session(self, work):
        """Build the cell's :class:`~repro.solver.session.SolverSession`,
        or ``None`` when ``config.incremental`` is off.

        The session is seeded from the work item's scripts (for mixed
        fusion, both pools): those are the assertions every mutant of
        the cell is built from, hence the reusable vocabulary.
        """
        incremental = self.config.incremental
        if not incremental:
            return None
        # Imported lazily: the session layer is optional and pulls in
        # the solver stack, which the core driver otherwise doesn't.
        from repro.solver.session import SessionConfig, SolverSession

        config = incremental if isinstance(incremental, SessionConfig) else None
        scripts = list(getattr(work, "scripts", ()) or ())
        scripts += list(getattr(work, "unsat_scripts", None) or ())
        return SolverSession(scripts, config=config, telemetry=self._tel)

    def _run_prepared(self, strategy, work, indices, seed=None, session=None):
        """The shared shard loop: run ``indices`` of ``strategy`` over a
        prepared work item and fold the outcomes into one report."""
        seed = self.config.seed if seed is None else seed
        mutant_counter = "mutants." + strategy.name
        report = YinYangReport()
        start = time.perf_counter()
        if session is None:
            # Incremental off -> None; on -> a session scoped to this
            # shard (serial runs: the whole cell). Leased callers pass
            # their own so it spans the lease, not one index batch.
            session = self.make_session(work)
        for index in indices:
            self._one_iteration(
                strategy, work, index, seed, report, mutant_counter, session
            )
        for solver in self.solvers:
            if getattr(solver, "quarantined", False):
                report.quarantined.add(solver.name)
        report.elapsed = time.perf_counter() - start
        # Profiling samples happen at shard boundaries, never per
        # iteration — the hot path stays counter-increments only.
        self._tel.sample_term_tables()
        self._tel.sample_guards(self.solvers)
        self._tel.sample_session(session)
        return report

    def _one_iteration(
        self, strategy, work, index, seed, report, mutant_counter, session=None
    ):
        tel = self._tel
        rng = iteration_rng(seed, index)
        report.iterations += 1
        tel.count("iterations")
        # The fresh-name scope makes the mutated script a pure function
        # of (strategy, seed, index): gensyms restart at 0 for every
        # iteration instead of accumulating across the run, so shard
        # boundaries can never shift them.
        with fresh_scope():
            try:
                mutant = strategy.mutate(rng, work, tel)
            except MutationError:
                # "fusion_failures" counts failed mutation draws of any
                # strategy; the name is journal-format legacy.
                report.fusion_failures += 1
                tel.count("fusion_failures")
                return
            report.fused += 1
            tel.count("fused")
            tel.count(mutant_counter)
            if not mutant.oracle:
                # Differential strategy whose ground truth could not be
                # established: nothing to compare against, skip checks.
                report.unknowns += 1
                tel.count("oracle_unresolved")
                return
            directive = None
            triage = self.config.triage
            if triage is not None:
                # Routing is a pure function of the mutant's formula
                # (plus an optional strategy-stamped feature hint), so
                # every worker computes the same tier for the same
                # iteration — shard shapes stay invisible.
                tier, directive = triage.route(
                    mutant.script, hint=getattr(mutant, "difficulty", None)
                )
                tel.count("triage.routed")
                tel.count("triage.tier." + tier)
            check_mutant(
                self.solvers,
                mutant,
                report,
                tel,
                performance_threshold=self.performance_threshold,
                unknown_is_crash=self.config.unknown_is_crash,
                iteration=index,
                directive=directive,
                session=session,
            )

    def test_mixed(self, want, sat_seeds, unsat_seeds, iterations=None):
        """Mixed fusion mode (paper Section 3.2): one satisfiable and one
        unsatisfiable seed per iteration; ``want`` selects whether the
        fused formula is satisfiable (disjunction) or unsatisfiable
        (conjunction plus fusion constraints)."""
        strategy = MixedFusionStrategy(want, self.config.fusion)
        sat_scripts = [getattr(s, "script", s) for s in sat_seeds]
        unsat_scripts = [getattr(s, "script", s) for s in unsat_seeds]
        if not sat_scripts or not unsat_scripts:
            raise ValueError("mixed fusion needs seeds of both labels")
        iterations = (
            iterations if iterations is not None else self.config.max_iterations
        )
        work = strategy.prepare_pools(sat_scripts, unsat_scripts)
        return self._run_prepared(strategy, work, range(iterations))

    # -- single-shot helpers --------------------------------------------------

    def fuse_once(self, oracle, phi1, phi2, seed=0):
        """Fuse one pair (for examples and debugging)."""
        rng = random.Random(seed)
        strategy = (
            self.strategy
            if isinstance(self.strategy, FusionStrategy)
            else FusionStrategy(self.config.fusion)
        )
        return strategy.fuse_pair(oracle, phi1, phi2, rng)
