"""YinYang's main process (the paper's Algorithm 1).

The loop repeatedly draws two random seeds of the same satisfiability,
fuses them, and feeds the fused formula to each solver under test:

- a solver **crash** (abnormal termination / internal error) is a crash
  bug;
- a definite answer **inconsistent with the oracle** is a soundness bug;
- a check exceeding the performance threshold is recorded as a
  performance issue (the paper found these during reduction);
- ``unknown`` is either ignored or treated as a crash, per config.

Everything is deterministic given the config seed. A multi-threaded
mode mirrors the paper's implementation note ("YinYang is able to run
in multiple-threaded mode").
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.config import YinYangConfig
from repro.core.fusion import fuse
from repro.errors import FusionError
from repro.solver.result import SolverCrash, SolverResult

SOUNDNESS = "soundness"
CRASH = "crash"
PERFORMANCE = "performance"
UNKNOWN_BUG = "unknown"
HARNESS = "harness"

# A GuardedSolver tags contained non-SolverCrash exceptions and
# quarantine refusals with these crash kinds (string-matched here to
# avoid a core -> robustness import).
_HARNESS_ERROR_KIND = "harness-error"
_QUARANTINED_KIND = "quarantined"


@dataclass
class BugRecord:
    """One bug-triggering fused formula."""

    kind: str  # soundness | crash | performance | unknown
    solver: str
    oracle: str
    reported: str  # what the solver answered / crash message
    script: object  # the fused Script
    seed_indices: tuple = (0, 0)
    schemes: tuple = ()
    logic: str = ""
    elapsed: float = 0.0
    note: str = ""  # solver-side detail (e.g. internal fault id / stderr)

    def __str__(self):
        return (
            f"[{self.kind}] {self.solver}: expected {self.oracle}, "
            f"got {self.reported} (schemes: {', '.join(self.schemes) or '-'})"
        )


@dataclass
class YinYangReport:
    """Outcome of a testing run: Algorithm 1's ``incorrects``/``crashes``."""

    iterations: int = 0
    fused: int = 0
    elapsed: float = 0.0
    bugs: list = field(default_factory=list)
    fusion_failures: int = 0
    unknowns: int = 0
    # Harness-resilience counters (populated when solvers are guarded).
    retries: int = 0
    timeouts: int = 0
    contained_errors: int = 0
    quarantine_skips: int = 0
    quarantined: set = field(default_factory=set)

    @property
    def incorrects(self):
        return [b for b in self.bugs if b.kind == SOUNDNESS]

    @property
    def crashes(self):
        return [b for b in self.bugs if b.kind == CRASH]

    @property
    def performance_issues(self):
        return [b for b in self.bugs if b.kind == PERFORMANCE]

    @property
    def harness_errors(self):
        return [b for b in self.bugs if b.kind == HARNESS]

    @property
    def throughput(self):
        """Fused formulas per second (the paper reports 41.5/s)."""
        if self.elapsed <= 0:
            return 0.0
        return self.fused / self.elapsed

    def merge(self, other):
        self.iterations += other.iterations
        self.fused += other.fused
        self.elapsed = max(self.elapsed, other.elapsed)
        self.bugs.extend(other.bugs)
        self.fusion_failures += other.fusion_failures
        self.unknowns += other.unknowns
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.contained_errors += other.contained_errors
        self.quarantine_skips += other.quarantine_skips
        self.quarantined |= other.quarantined

    def summary(self):
        text = (
            f"{self.iterations} iterations, {self.fused} fused formulas, "
            f"{len(self.incorrects)} soundness, {len(self.crashes)} crash, "
            f"{len(self.performance_issues)} performance"
        )
        extras = []
        if self.retries:
            extras.append(f"{self.retries} retries")
        if self.timeouts:
            extras.append(f"{self.timeouts} timeouts")
        if self.contained_errors:
            extras.append(f"{self.contained_errors} contained errors")
        if self.quarantined:
            extras.append("quarantined: " + ", ".join(sorted(self.quarantined)))
        if extras:
            text += " (" + "; ".join(extras) + ")"
        return text


class YinYang:
    """The YinYang testing tool.

    ``solvers`` is one solver or a list; each must expose ``name`` and
    ``check_script(script) -> CheckOutcome`` and may raise
    :class:`~repro.solver.result.SolverCrash`.

    ``policy`` (a :class:`~repro.robustness.policy.ResiliencePolicy`)
    wraps every solver in a
    :class:`~repro.robustness.guard.GuardedSolver`: per-check watchdog
    deadlines, transient-failure retries, containment of unexpected
    exceptions as harness-error bug records, and quarantine of solvers
    that crash repeatedly. Without a policy the loop behaves exactly as
    before (no guard overhead).
    """

    def __init__(self, solvers, config=None, performance_threshold=None, policy=None):
        solvers = solvers if isinstance(solvers, (list, tuple)) else [solvers]
        if policy is not None:
            # Imported lazily: repro.robustness imports this module.
            from repro.robustness.guard import GuardedSolver

            solvers = [
                s if isinstance(s, GuardedSolver) else GuardedSolver(s, policy)
                for s in solvers
            ]
        self.solvers = list(solvers)
        self.config = config or YinYangConfig()
        self.performance_threshold = performance_threshold
        self.policy = policy

    # -- Algorithm 1 -----------------------------------------------------

    def test(self, oracle, seeds, iterations=None, threads=1):
        """Run the main loop over ``seeds`` (all labeled ``oracle``).

        ``seeds`` is a list of Scripts or
        :class:`~repro.core.oracle.LabeledSeed`. Returns a
        :class:`YinYangReport`.
        """
        scripts = [getattr(s, "script", s) for s in seeds]
        logics = [getattr(s, "logic", "") for s in seeds]
        if len(scripts) < 1:
            raise ValueError("need at least one seed")
        iterations = iterations if iterations is not None else self.config.max_iterations
        if threads <= 1:
            return self._run(oracle, scripts, logics, iterations, self.config.seed)
        # Distribute iterations across workers without dropping the
        # remainder: the first (iterations % threads) workers run one
        # extra iteration, so the totals always add up.
        base, remainder = divmod(iterations, threads)
        chunks = [base + (1 if t < remainder else 0) for t in range(threads)]
        report = YinYangReport()
        with ThreadPoolExecutor(max_workers=threads) as pool:
            futures = [
                pool.submit(
                    self._run, oracle, scripts, logics, chunk, self.config.seed + t
                )
                for t, chunk in enumerate(chunks)
                if chunk > 0
            ]
            for future in futures:
                report.merge(future.result())
        return report

    def _run(self, oracle, scripts, logics, iterations, seed):
        rng = random.Random(seed)
        report = YinYangReport()
        start = time.perf_counter()
        for _ in range(iterations):
            report.iterations += 1
            i = rng.randrange(len(scripts))
            j = rng.randrange(len(scripts))
            try:
                result = fuse(oracle, scripts[i], scripts[j], rng, self.config.fusion)
            except FusionError:
                report.fusion_failures += 1
                continue
            report.fused += 1
            logic = logics[i] or logics[j]
            self._check_one(result, (i, j), logic, report)
        for solver in self.solvers:
            if getattr(solver, "quarantined", False):
                report.quarantined.add(solver.name)
        report.elapsed = time.perf_counter() - start
        return report

    def _check_one(self, fusion_result, seed_indices, logic, report):
        schemes = tuple(t.scheme for t in fusion_result.triplets)
        for solver in self.solvers:
            if getattr(solver, "quarantined", False):
                # Circuit breaker tripped: degrade gracefully to the
                # remaining solvers instead of hammering a dead one.
                report.quarantine_skips += 1
                report.quarantined.add(solver.name)
                continue
            began = time.perf_counter()
            try:
                outcome = solver.check_script(fusion_result.script)
            except SolverCrash as crash:
                if crash.kind == _QUARANTINED_KIND:
                    # The breaker tripped between our check above and
                    # the call (thread-mode race): a skip, not a crash.
                    report.quarantine_skips += 1
                    report.quarantined.add(solver.name)
                    continue
                report.retries += getattr(crash, "retries", 0)
                contained = crash.kind == _HARNESS_ERROR_KIND
                if contained:
                    report.contained_errors += 1
                report.bugs.append(
                    BugRecord(
                        kind=HARNESS if contained else CRASH,
                        solver=solver.name,
                        oracle=fusion_result.oracle,
                        reported=str(crash),
                        script=fusion_result.script,
                        seed_indices=seed_indices,
                        schemes=schemes,
                        logic=logic,
                        elapsed=time.perf_counter() - began,
                        note=getattr(crash, "fault_id", ""),
                    )
                )
                continue
            elapsed = time.perf_counter() - began
            report.retries += outcome.stats.get("guard_retries", 0)
            if outcome.stats.get("guard_timeout"):
                report.timeouts += 1
            if (
                self.performance_threshold is not None
                and elapsed > self.performance_threshold
            ):
                slow_faults = outcome.stats.get("slow_faults", [])
                report.bugs.append(
                    BugRecord(
                        kind=PERFORMANCE,
                        solver=solver.name,
                        oracle=fusion_result.oracle,
                        reported=f"{elapsed:.2f}s",
                        script=fusion_result.script,
                        seed_indices=seed_indices,
                        schemes=schemes,
                        logic=logic,
                        elapsed=elapsed,
                        note=slow_faults[0] if slow_faults else "",
                    )
                )
            if outcome.result is SolverResult.UNKNOWN:
                report.unknowns += 1
                # An unknown accompanied by an internal error note is a
                # bug in its own right; a plain unknown is a bug only
                # under the strict (unknown-is-crash) policy.
                internal_error = outcome.reason.startswith("error:")
                if internal_error or self.config.unknown_is_crash:
                    report.bugs.append(
                        BugRecord(
                            kind=UNKNOWN_BUG,
                            solver=solver.name,
                            oracle=fusion_result.oracle,
                            reported="unknown",
                            script=fusion_result.script,
                            seed_indices=seed_indices,
                            schemes=schemes,
                            logic=logic,
                            elapsed=elapsed,
                            note=outcome.reason,
                        )
                    )
                continue
            if str(outcome.result) != fusion_result.oracle:
                report.bugs.append(
                    BugRecord(
                        kind=SOUNDNESS,
                        solver=solver.name,
                        oracle=fusion_result.oracle,
                        reported=str(outcome.result),
                        script=fusion_result.script,
                        seed_indices=seed_indices,
                        schemes=schemes,
                        logic=logic,
                        elapsed=elapsed,
                        note=outcome.reason,
                    )
                )

    def test_mixed(self, want, sat_seeds, unsat_seeds, iterations=None):
        """Mixed fusion mode (paper Section 3.2): one satisfiable and one
        unsatisfiable seed per iteration; ``want`` selects whether the
        fused formula is satisfiable (disjunction) or unsatisfiable
        (conjunction plus fusion constraints)."""
        from repro.core.fusion import fuse_mixed

        sat_scripts = [getattr(s, "script", s) for s in sat_seeds]
        unsat_scripts = [getattr(s, "script", s) for s in unsat_seeds]
        if not sat_scripts or not unsat_scripts:
            raise ValueError("mixed fusion needs seeds of both labels")
        iterations = (
            iterations if iterations is not None else self.config.max_iterations
        )
        rng = random.Random(self.config.seed)
        report = YinYangReport()
        start = time.perf_counter()
        for _ in range(iterations):
            report.iterations += 1
            phi_sat = sat_scripts[rng.randrange(len(sat_scripts))]
            phi_unsat = unsat_scripts[rng.randrange(len(unsat_scripts))]
            try:
                result = fuse_mixed(phi_sat, phi_unsat, want, rng, self.config.fusion)
            except FusionError:
                report.fusion_failures += 1
                continue
            report.fused += 1
            self._check_one(result, (0, 0), "", report)
        report.elapsed = time.perf_counter() - start
        return report

    # -- single-shot helpers --------------------------------------------------

    def fuse_once(self, oracle, phi1, phi2, seed=0):
        """Fuse one pair (for examples and debugging)."""
        rng = random.Random(seed)
        return fuse(oracle, phi1, phi2, rng, self.config.fusion)
