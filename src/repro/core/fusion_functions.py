"""Fusion and inversion functions (the paper's Figure 6).

A *fusion scheme* describes, for one sort, how a fresh variable ``z``
relates to a variable pair ``(x, y)``:

- ``z = f(x, y)``            (Definition 1, the fusion function)
- ``x = r_x(y, z)``          (Definition 2, inversion for x)
- ``y = r_y(x, z)``          (inversion for y)

Instantiating a scheme draws random coefficients, yielding a
:class:`FusionInstance` with concrete term builders. As the paper notes,
inversion terms may mention the original variable (the string schemes
use ``str.len x`` inside ``r_x``) — the identities still hold under any
model where ``z = f(x, y)``.

The table is extensible: :func:`register_scheme` adds user-defined
families (the paper's "richer set of fusion and inversion functions can
be designed based on the generic Definitions 1 and 2").
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.errors import FusionError
from repro.smtlib import builder as b
from repro.smtlib.ast import mk_const
from repro.smtlib.sorts import INT, REAL, STRING

_LETTERS = "abcdef"


@dataclass(frozen=True)
class FusionInstance:
    """A concrete fusion function with its two inversion functions.

    ``fusion(x, y)`` builds the term ``f(x, y)``;
    ``invert_x(x, y, z)`` builds ``r_x`` (may mention ``x`` itself);
    ``invert_y(x, y, z)`` builds ``r_y``.
    """

    scheme: str
    sort: object
    fusion: object
    invert_x: object
    invert_y: object

    def constraints(self, x, y, z):
        """The three fusion constraints of UNSAT fusion (Section 2.2)."""
        return [
            b.eq(z, self.fusion(x, y)),
            b.eq(x, self.invert_x(x, y, z)),
            b.eq(y, self.invert_y(x, y, z)),
        ]


@dataclass(frozen=True)
class FusionScheme:
    """A family of fusion functions for one sort."""

    name: str
    sort: object
    instantiate: object  # (rng, config) -> FusionInstance


def _nonzero(rng, bound):
    value = rng.randint(1, bound)
    return value if rng.random() < 0.5 else -value


def _any_coeff(rng, bound):
    return rng.randint(-bound, bound)


# -- Int / Real arithmetic families (rows 1-4 of Figure 6) ----------------


def _make_addition(sort, divider):
    def instantiate(rng, config):
        return FusionInstance(
            scheme=f"{sort.name.lower()}-addition",
            sort=sort,
            fusion=lambda x, y: b.add(x, y),
            invert_x=lambda x, y, z: b.sub(z, y),
            invert_y=lambda x, y, z: b.sub(z, x),
        )

    return instantiate


def _make_addition_constant(sort, divider):
    def instantiate(rng, config):
        c = mk_const(_any_coeff(rng, config.coefficient_range), INT)
        if sort == REAL:
            c = mk_const(Fraction(c.value), REAL)
        return FusionInstance(
            scheme=f"{sort.name.lower()}-addition-constant",
            sort=sort,
            fusion=lambda x, y: b.add(x, c, y),
            invert_x=lambda x, y, z: b.sub(z, c, y),
            invert_y=lambda x, y, z: b.sub(z, c, x),
        )

    return instantiate


def _make_multiplication(sort, divider):
    def instantiate(rng, config):
        return FusionInstance(
            scheme=f"{sort.name.lower()}-multiplication",
            sort=sort,
            fusion=lambda x, y: b.mul(x, y),
            invert_x=lambda x, y, z: divider(z, y),
            invert_y=lambda x, y, z: divider(z, x),
        )

    return instantiate


def _make_affine(sort, divider):
    def instantiate(rng, config):
        bound = config.coefficient_range
        c1_val = _nonzero(rng, bound)
        c2_val = _nonzero(rng, bound)
        c3_val = _any_coeff(rng, bound)
        if sort == REAL:
            c1 = mk_const(Fraction(c1_val), REAL)
            c2 = mk_const(Fraction(c2_val), REAL)
            c3 = mk_const(Fraction(c3_val), REAL)
        else:
            c1 = mk_const(c1_val, INT)
            c2 = mk_const(c2_val, INT)
            c3 = mk_const(c3_val, INT)
        return FusionInstance(
            scheme=f"{sort.name.lower()}-affine",
            sort=sort,
            fusion=lambda x, y: b.add(b.mul(c1, x), b.mul(c2, y), c3),
            invert_x=lambda x, y, z: divider(b.sub(z, b.mul(c2, y), c3), c1),
            invert_y=lambda x, y, z: divider(b.sub(z, b.mul(c1, x), c3), c2),
        )

    return instantiate


# -- Bit-vector families (Figure-6 style, modular arithmetic) -------------
#
# Every BV fusion function is exactly invertible: addition is a group
# operation modulo 2^w (so bvsub recovers either operand) and xor is its
# own inverse. No divider analogue is needed.


def _make_bv_addition(sort, width):
    def instantiate(rng, config):
        return FusionInstance(
            scheme=f"bv{width}-addition",
            sort=sort,
            fusion=lambda x, y: b.bvadd(x, y),
            invert_x=lambda x, y, z: b.bvsub(z, y),
            invert_y=lambda x, y, z: b.bvsub(z, x),
        )

    return instantiate


def _make_bv_addition_constant(sort, width):
    def instantiate(rng, config):
        c = b.bv(rng.randint(0, (1 << width) - 1), width)
        return FusionInstance(
            scheme=f"bv{width}-addition-constant",
            sort=sort,
            fusion=lambda x, y: b.bvadd(b.bvadd(x, c), y),
            invert_x=lambda x, y, z: b.bvsub(b.bvsub(z, c), y),
            invert_y=lambda x, y, z: b.bvsub(b.bvsub(z, c), x),
        )

    return instantiate


def _make_bv_xor(sort, width):
    def instantiate(rng, config):
        return FusionInstance(
            scheme=f"bv{width}-xor",
            sort=sort,
            fusion=lambda x, y: b.bvxor(x, y),
            invert_x=lambda x, y, z: b.bvxor(z, y),
            invert_y=lambda x, y, z: b.bvxor(z, x),
        )

    return instantiate


# -- String families (rows 5-7 of Figure 6) ------------------------------


def _string_concat_substr(rng, config):
    return FusionInstance(
        scheme="string-concat-substr",
        sort=STRING,
        fusion=lambda x, y: b.concat(x, y),
        invert_x=lambda x, y, z: b.substr(z, 0, b.length(x)),
        invert_y=lambda x, y, z: b.substr(z, b.length(x), b.length(y)),
    )


def _string_concat_replace(rng, config):
    return FusionInstance(
        scheme="string-concat-replace",
        sort=STRING,
        fusion=lambda x, y: b.concat(x, y),
        invert_x=lambda x, y, z: b.substr(z, 0, b.length(x)),
        invert_y=lambda x, y, z: b.replace(z, x, b.lift("")),
    )


def _string_concat_infix(rng, config):
    infix = "".join(
        rng.choice(_LETTERS) for _ in range(rng.randint(1, config.coefficient_range))
    )
    c = b.lift(infix)
    return FusionInstance(
        scheme="string-concat-infix",
        sort=STRING,
        fusion=lambda x, y: b.concat(x, c, y),
        invert_x=lambda x, y, z: b.substr(z, 0, b.length(x)),
        invert_y=lambda x, y, z: b.replace(b.replace(z, x, b.lift("")), c, b.lift("")),
    )


_SCHEMES = {}


_SORTED_SCHEME_CACHE = {}  # (sort.name, requested names) -> sorted scheme list


def register_scheme(scheme):
    """Register a fusion-function family (extension hook)."""
    if scheme.name in _SCHEMES:
        raise FusionError(f"fusion scheme {scheme.name!r} already registered")
    _SCHEMES[scheme.name] = scheme
    _SORTED_SCHEME_CACHE.clear()


def _register_builtins():
    from repro.smtlib import builder

    for sort, divider in ((INT, builder.idiv), (REAL, builder.div)):
        prefix = sort.name.lower()
        register_scheme(
            FusionScheme(f"{prefix}-addition", sort, _make_addition(sort, divider))
        )
        register_scheme(
            FusionScheme(
                f"{prefix}-addition-constant", sort, _make_addition_constant(sort, divider)
            )
        )
        register_scheme(
            FusionScheme(
                f"{prefix}-multiplication", sort, _make_multiplication(sort, divider)
            )
        )
        register_scheme(
            FusionScheme(f"{prefix}-affine", sort, _make_affine(sort, divider))
        )
    register_scheme(FusionScheme("string-concat-substr", STRING, _string_concat_substr))
    register_scheme(FusionScheme("string-concat-replace", STRING, _string_concat_replace))
    register_scheme(FusionScheme("string-concat-infix", STRING, _string_concat_infix))

    from repro.smtlib.bitvec import GENERATOR_WIDTHS
    from repro.smtlib.sorts import bitvec_sort

    for width in GENERATOR_WIDTHS:
        sort = bitvec_sort(width)
        register_scheme(
            FusionScheme(f"bv{width}-addition", sort, _make_bv_addition(sort, width))
        )
        register_scheme(
            FusionScheme(
                f"bv{width}-addition-constant",
                sort,
                _make_bv_addition_constant(sort, width),
            )
        )
        register_scheme(
            FusionScheme(f"bv{width}-xor", sort, _make_bv_xor(sort, width))
        )


_register_builtins()


def schemes_for_sort(sort, names=()):
    """All registered schemes for ``sort``, optionally filtered by name."""
    out = [s for s in _SCHEMES.values() if s.sort == sort]
    if names:
        out = [s for s in out if s.name in names]
    return out


def all_scheme_names():
    return sorted(_SCHEMES)


def pick_instance(sort, rng, config):
    """Randomly instantiate a fusion scheme for ``sort``.

    Raises :class:`FusionError` if no scheme supports the sort (e.g.
    Bool variables are never fused).
    """
    key = (sort.name, tuple(config.schemes) if config.schemes else ())
    available = _SORTED_SCHEME_CACHE.get(key)
    if available is None:
        available = sorted(
            schemes_for_sort(sort, config.schemes), key=lambda s: s.name
        )
        _SORTED_SCHEME_CACHE[key] = available
    if not available:
        raise FusionError(f"no fusion scheme for sort {sort}")
    scheme = rng.choice(available)
    return scheme.instantiate(rng, config)
