"""Random-occurrence substitution: the paper's ``phi[e/x]_R``.

``phi[e/x]_R`` replaces *some* free occurrences of ``x`` in ``phi``
(possibly none) by the term ``e``. The model-count inequality
``C(phi[e/x]) <= C(phi[e/x]_R)`` from Section 3.1 is exercised by the
property tests.

Both traversals are iterative (deeply nested fused formulas must not
ride Python's recursion limit) and pruned by the term layer's cached
free-name sets and per-node occurrence counts, so subtrees that cannot
contain a selected occurrence are skipped in O(1).
"""

from __future__ import annotations

from repro.smtlib.ast import (
    occurrence_counts,
    substitute_selected_occurrences,
)


def count_free_occurrences(term, var):
    """Number of free occurrences of ``var`` in ``term``."""
    return occurrence_counts(term, var)


def substitute_occurrences(term, var, replacement, selected):
    """Replace the free occurrences of ``var`` whose index is in ``selected``.

    Occurrences are numbered left-to-right starting at 0. Returns the
    rewritten term; occurrences inside ``replacement`` are never
    re-visited (the substitution is simultaneous, not iterated).
    """
    selected = sorted(set(selected))
    if not selected:
        return term
    if occurrence_counts(term, var) == 0:
        return term
    return substitute_selected_occurrences(term, var, replacement, selected)


def random_occurrence_substitution(term, var, replacement, rng, probability):
    """``phi[e/x]_R``: each free occurrence is replaced with ``probability``.

    Returns ``(new_term, replaced_count, total_count)``.

    The RNG is drawn exactly once per occurrence, in occurrence order —
    campaign determinism depends on this draw count, so the occurrence
    totals here must match the historical tree-walk semantics exactly.
    """
    total = occurrence_counts(term, var)
    if total == 0:
        return term, 0, 0
    rand = rng.random
    selected = [i for i in range(total) if rand() < probability]
    if not selected:
        return term, 0, total
    new_term = substitute_selected_occurrences(term, var, replacement, selected)
    return new_term, len(selected), total
