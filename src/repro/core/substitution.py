"""Random-occurrence substitution: the paper's ``phi[e/x]_R``.

``phi[e/x]_R`` replaces *some* free occurrences of ``x`` in ``phi``
(possibly none) by the term ``e``. The model-count inequality
``C(phi[e/x]) <= C(phi[e/x]_R)`` from Section 3.1 is exercised by the
property tests.
"""

from __future__ import annotations

from repro.smtlib.ast import App, Quantifier, Var


def count_free_occurrences(term, var):
    """Number of free occurrences of ``var`` in ``term``."""
    if isinstance(term, Var):
        return 1 if term == var else 0
    if isinstance(term, App):
        return sum(count_free_occurrences(a, var) for a in term.args)
    if isinstance(term, Quantifier):
        if var.name in term.bound_names:
            return 0
        return count_free_occurrences(term.body, var)
    return 0


def substitute_occurrences(term, var, replacement, selected):
    """Replace the free occurrences of ``var`` whose index is in ``selected``.

    Occurrences are numbered left-to-right starting at 0. Returns the
    rewritten term; occurrences inside ``replacement`` are never
    re-visited (the substitution is simultaneous, not iterated).
    """
    selected = frozenset(selected)
    counter = [0]

    def walk(node):
        if isinstance(node, Var):
            if node == var:
                index = counter[0]
                counter[0] += 1
                if index in selected:
                    return replacement
            return node
        if isinstance(node, App):
            new_args = tuple(walk(a) for a in node.args)
            if new_args == node.args:
                return node
            return App(node.op, new_args, node.sort)
        if isinstance(node, Quantifier):
            if var.name in node.bound_names:
                return node
            new_body = walk(node.body)
            if new_body is node.body:
                return node
            return Quantifier(node.kind, node.bindings, new_body)
        return node

    return walk(term)


def random_occurrence_substitution(term, var, replacement, rng, probability):
    """``phi[e/x]_R``: each free occurrence is replaced with ``probability``.

    Returns ``(new_term, replaced_count, total_count)``.
    """
    total = count_free_occurrences(term, var)
    if total == 0:
        return term, 0, 0
    selected = [i for i in range(total) if rng.random() < probability]
    new_term = substitute_occurrences(term, var, replacement, selected)
    return new_term, len(selected), total
