"""Process-sharded execution of Algorithm 1: a persistent worker pool.

The paper's campaign is embarrassingly parallel — every fuse→solve→
check iteration is independent — but the solvers under test here are
pure Python, so :class:`~repro.core.yinyang.YinYang`'s thread mode is
GIL-bound. This module shards the iteration index space across a
persistent ``multiprocessing`` pool (spawn start method, so it is safe
under any embedding) instead:

- each worker process builds its **own solver instances** once, from a
  picklable ``solver_factory`` (live solvers hold locks and caches and
  must not cross the spawn boundary);
- each worker keeps a **parse cache** for seed formulas: seeds travel
  to workers as SMT-LIB text and are parsed (which typechecks — the
  parser validates sorts as it goes) at most once per worker, no
  matter how many cells and shards reuse them;
- each worker owns its **fresh-name state** (thread-local gensyms) and
  every iteration runs inside its own ``fresh_scope()``, so a fused
  script is a pure function of ``(seed, iteration index)`` — shard
  boundaries can never shift a gensym;
- optionally, each worker appends completed shards to a private
  **sidecar journal** (crash-safe, atomic) that the campaign parent
  merges into the main :class:`~repro.robustness.journal.CampaignJournal`.

Because iterations are self-contained, merging the shards of any
worker count reproduces the single-worker report bit-for-bit (see
``tests/test_parallel_determinism.py``); parallelism can never
silently alter the oracle. The one deliberate exception is quarantine:
a circuit breaker trips on *consecutive* failures, an order-dependent
notion, so the parent aggregates quarantined names from merged shard
reports and re-broadcasts them to workers via
:meth:`~repro.robustness.guard.GuardedSolver.force_quarantine`.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.core.yinyang import YinYang, merge_shard_reports, shard_indices


def _spawn_context():
    return multiprocessing.get_context("spawn")


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to build its world.

    Shipped once per worker at pool start; must stay picklable.
    ``journal_meta`` carries the campaign parameters stamped into each
    sidecar journal so a resume can tell matching partials from stale
    ones.
    """

    solver_factory: object
    config: object  # YinYangConfig
    performance_threshold: float | None = None
    policy: object = None  # ResiliencePolicy | None
    journal_path: str | None = None
    journal_meta: dict = field(default_factory=dict)
    # A TelemetryConfig (picklable) — live registries must not cross
    # the spawn boundary; each worker builds its own Telemetry and
    # ships per-shard snapshots back with its results.
    telemetry: object = None


@dataclass(frozen=True)
class ShardTask:
    """One shard of one cell: iterations ``range(shard, iterations, of)``."""

    oracle: str
    seed_texts: tuple
    logics: tuple
    iterations: int
    shard: int
    of: int
    seed: int
    cell: tuple | None = None  # (solver, family, oracle) for journaling
    solver_names: tuple | None = None  # None = all of the worker's solvers
    quarantined: tuple = ()  # names to pre-quarantine (cross-worker breaker)
    # The mutation strategy's registry name: strategies cross the spawn
    # boundary by name (live instances may hold caches/solver handles);
    # the worker rebuilds the instance from name + config.
    strategy: str = "fusion"


def serialize_seeds(seeds):
    """Seeds as (SMT-LIB texts, logics) — the picklable wire format."""
    from repro.smtlib.printer import print_script

    texts, logics = [], []
    for seed in seeds:
        script = getattr(seed, "script", seed)
        texts.append(print_script(script))
        logics.append(getattr(seed, "logic", ""))
    return tuple(texts), tuple(logics)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

_STATE = None  # per-process _WorkerState, set by _init_worker


class _WorkerState:
    """What one worker process owns for its whole lifetime."""

    def __init__(self, spec):
        solvers = spec.solver_factory()
        solvers = list(solvers) if isinstance(solvers, (list, tuple)) else [solvers]
        if spec.policy is not None:
            from repro.robustness.guard import GuardedSolver

            solvers = [
                s if isinstance(s, GuardedSolver) else GuardedSolver(s, spec.policy)
                for s in solvers
            ]
        self.solvers = solvers
        self.by_name = {s.name: s for s in solvers}
        self.config = spec.config
        self.performance_threshold = spec.performance_threshold
        self.telemetry_config = spec.telemetry
        self.parse_cache = {}
        self.journal = None
        if spec.journal_path:
            self.journal = self._open_sidecar(spec.journal_path, spec.journal_meta)

    @staticmethod
    def _open_sidecar(journal_path, meta):
        from repro.robustness.journal import (
            CampaignJournal,
            JournalError,
            sidecar_path,
        )

        path = sidecar_path(journal_path, os.getpid())
        try:
            journal = CampaignJournal(path)
            journal.ensure_meta(**meta)
            return journal
        except JournalError:
            # A stale sidecar from a differently-parameterized run (a
            # recycled pid): its partials cannot line up — start over.
            os.remove(path)
            journal = CampaignJournal(path)
            journal.ensure_meta(**meta)
            return journal

    def scripts_for(self, seed_texts):
        """Parse (and thereby typecheck) seed texts, cached per worker."""
        scripts = []
        for text in seed_texts:
            script = self.parse_cache.get(text)
            if script is None:
                from repro.smtlib.parser import parse_script

                script = self.parse_cache[text] = parse_script(text)
            scripts.append(script)
        return scripts


def _init_worker(spec):
    global _STATE
    _STATE = _WorkerState(spec)


def _run_shard(task):
    """Run one shard in this worker; return a picklable payload."""
    from repro.robustness.journal import serialize_report

    state = _STATE
    scripts = state.scripts_for(task.seed_texts)
    if task.solver_names is None:
        solvers = state.solvers
    else:
        solvers = [state.by_name[name] for name in task.solver_names]
    for name in task.quarantined:
        solver = state.by_name.get(name)
        if solver is not None and hasattr(solver, "force_quarantine"):
            solver.force_quarantine()
    # One Telemetry per shard (not per worker): each payload carries a
    # clean per-shard snapshot, so the parent's merge — which sums
    # counters like sidecar journals sum cells — never double-counts a
    # long-lived worker's history.
    from repro.observability.telemetry import Telemetry

    telemetry = Telemetry.from_config(state.telemetry_config)
    try:
        tool = YinYang(
            solvers,
            config=state.config,
            performance_threshold=state.performance_threshold,
            telemetry=telemetry,
            strategy=task.strategy,
        )
        report = tool.run_iterations(
            task.oracle,
            scripts,
            list(task.logics),
            shard_indices(task.iterations, task.shard, task.of),
            seed=task.seed,
        )
        telemetry_snapshot = telemetry.snapshot() if telemetry is not None else None
    finally:
        if telemetry is not None:
            telemetry.close()
    if state.journal is not None and task.cell is not None:
        state.journal.record_shard(tuple(task.cell), task.shard, task.of, report)
    return {
        "report": serialize_report(report),
        "elapsed": report.elapsed,
        "pid": os.getpid(),
        "telemetry": telemetry_snapshot,
        "guards": [
            s.guard_state() for s in solvers if hasattr(s, "guard_state")
        ],
    }


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class ShardedPool:
    """A persistent pool of campaign workers (context manager).

    Created once and reused across every cell of a campaign: worker
    startup (spawn + imports + solver construction) is paid once, and
    the per-worker parse cache keeps earning across cells that share
    seed corpora.
    """

    def __init__(self, workers, spec):
        self.workers = max(1, workers)
        self.spec = spec
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=_spawn_context(),
            initializer=_init_worker,
            initargs=(spec,),
        )

    def submit(self, task):
        return self._executor.submit(_run_shard, task)

    def shutdown(self):
        self._executor.shutdown()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()
        return False


def collect_shard(payload):
    """Deserialize a worker payload back into a YinYangReport.

    The report's scripts come back as SMT-LIB text (exactly what the
    journal stores); ``elapsed`` — excluded from the deterministic
    serialization — is restored from the payload side-channel so
    throughput accounting still works.
    """
    from repro.robustness.journal import deserialize_report

    report = deserialize_report(payload["report"])
    report.elapsed = payload["elapsed"]
    return report


def run_sharded_test(
    solver_factory,
    config,
    performance_threshold,
    policy,
    oracle,
    seeds,
    iterations,
    workers,
    telemetry=None,
    strategy="fusion",
):
    """``YinYang.test(mode="process")``: one run sharded over a pool."""
    if solver_factory is None:
        raise ValueError(
            "process mode needs solver_factory: a picklable zero-argument "
            "callable returning the solvers under test (live solver objects "
            "cannot cross the spawn boundary)"
        )
    seed_texts, logics = serialize_seeds(seeds)
    if not seed_texts:
        raise ValueError("need at least one seed")
    spec = WorkerSpec(
        solver_factory=solver_factory,
        config=config,
        performance_threshold=performance_threshold,
        policy=policy,
        telemetry=telemetry.config() if telemetry is not None else None,
    )
    start = time.perf_counter()
    with ShardedPool(workers, spec) as pool:
        futures = [
            pool.submit(
                ShardTask(
                    oracle=oracle,
                    seed_texts=seed_texts,
                    logics=logics,
                    iterations=iterations,
                    shard=shard,
                    of=pool.workers,
                    seed=config.seed,
                    strategy=strategy,
                )
            )
            for shard in range(pool.workers)
            if len(shard_indices(iterations, shard, pool.workers)) > 0
        ]
        payloads = [future.result() for future in futures]
        merged = merge_shard_reports([collect_shard(p) for p in payloads])
    if telemetry is not None:
        for payload in payloads:
            if payload.get("telemetry") is not None:
                telemetry.merge_snapshot(payload["telemetry"])
    merged.elapsed = time.perf_counter() - start
    return merged
