"""Process-sharded execution of Algorithm 1: a persistent worker pool.

The paper's campaign is embarrassingly parallel — every fuse→solve→
check iteration is independent — but the solvers under test here are
pure Python, so :class:`~repro.core.yinyang.YinYang`'s thread mode is
GIL-bound. This module shards the iteration index space across a
persistent ``multiprocessing`` pool (spawn start method, so it is safe
under any embedding) instead:

- each worker process builds its **own solver instances** once, from a
  picklable ``solver_factory`` (live solvers hold locks and caches and
  must not cross the spawn boundary);
- each worker keeps a **parse cache** for seed formulas: seeds travel
  to workers as SMT-LIB text and are parsed (which typechecks — the
  parser validates sorts as it goes) at most once per worker, no
  matter how many cells and shards reuse them;
- each worker owns its **fresh-name state** (thread-local gensyms) and
  every iteration runs inside its own ``fresh_scope()``, so a fused
  script is a pure function of ``(seed, iteration index)`` — shard
  boundaries can never shift a gensym;
- optionally, each worker appends completed shards to a private
  **sidecar journal** (crash-safe, atomic) that the campaign parent
  merges into the main :class:`~repro.robustness.journal.CampaignJournal`.

Because iterations are self-contained, merging the shards of any
worker count reproduces the single-worker report bit-for-bit (see
``tests/test_parallel_determinism.py``); parallelism can never
silently alter the oracle. The one deliberate exception is quarantine:
a circuit breaker trips on *consecutive* failures, an order-dependent
notion, so the parent aggregates quarantined names from merged shard
reports and re-broadcasts them to workers via
:meth:`~repro.robustness.guard.GuardedSolver.force_quarantine`.

Supervised mode (:class:`SupervisedPoolBackend` +
:class:`~repro.robustness.supervisor.Supervisor`) extends the same
invariant across worker *death*: a shard runs as a leased
iteration-by-iteration loop that heartbeats before each iteration,
fires planned :class:`~repro.robustness.chaos.ProcessChaos` faults,
and checkpoints every completed iteration to a crash-safe
:class:`~repro.robustness.journal.ShardProgress` log. Because each
iteration is a pure function of ``(strategy, seed, index)``, a lease
re-executed on a respawned worker replays its checkpoints and re-runs
only the missing iterations — the merged report (and therefore the
campaign journal) is byte-identical to a failure-free run.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import signal
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.core.yinyang import YinYang, merge_shard_reports, shard_indices


def _spawn_context():
    return multiprocessing.get_context("spawn")


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to build its world.

    Shipped once per worker at pool start; must stay picklable.
    ``journal_meta`` carries the campaign parameters stamped into each
    sidecar journal so a resume can tell matching partials from stale
    ones.
    """

    solver_factory: object
    config: object  # YinYangConfig
    performance_threshold: float | None = None
    policy: object = None  # ResiliencePolicy | None
    journal_path: str | None = None
    journal_meta: dict = field(default_factory=dict)
    # A TelemetryConfig (picklable) — live registries must not cross
    # the spawn boundary; each worker builds its own Telemetry and
    # ships per-shard snapshots back with its results.
    telemetry: object = None
    # A ContainmentPolicy the worker applies to itself (setrlimit) at
    # startup, and a ProcessChaos fault plan for supervised tests —
    # both picklable, both optional.
    containment: object = None
    chaos_process: object = None


@dataclass(frozen=True)
class ShardTask:
    """One shard of one cell: iterations ``range(shard, iterations, of)``."""

    oracle: str
    seed_texts: tuple
    logics: tuple
    iterations: int
    shard: int
    of: int
    seed: int
    cell: tuple | None = None  # (solver, family, oracle) for journaling
    solver_names: tuple | None = None  # None = all of the worker's solvers
    quarantined: tuple = ()  # names to pre-quarantine (cross-worker breaker)
    # The mutation strategy's registry name: strategies cross the spawn
    # boundary by name (live instances may hold caches/solver handles);
    # the worker rebuilds the instance from name + config.
    strategy: str = "fusion"
    # Supervised-lease fields (stamped by the Supervisor; all None in
    # bare pool mode). ``indices`` overrides the strided index set —
    # bisected child leases carry an explicit slice of the parent
    # shard's iterations. ``lease_id`` switches the worker to the
    # per-iteration loop with heartbeats (``heartbeat_dir``) and
    # crash-safe checkpoints (``progress_path``); ``attempt`` gates
    # planned chaos faults so injected deaths stop on retry.
    indices: tuple | None = None
    attempt: int = 0
    lease_id: int | None = None
    heartbeat_dir: str | None = None
    progress_path: str | None = None


def serialize_seeds(seeds):
    """Seeds as (SMT-LIB texts, logics) — the picklable wire format."""
    from repro.smtlib.printer import print_script

    texts, logics = [], []
    for seed in seeds:
        script = getattr(seed, "script", seed)
        texts.append(print_script(script))
        logics.append(getattr(seed, "logic", ""))
    return tuple(texts), tuple(logics)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

_STATE = None  # per-process _WorkerState, set by _init_worker


class _WorkerState:
    """What one worker process owns for its whole lifetime."""

    def __init__(self, spec):
        solvers = spec.solver_factory()
        solvers = list(solvers) if isinstance(solvers, (list, tuple)) else [solvers]
        if spec.policy is not None:
            from repro.robustness.guard import GuardedSolver

            solvers = [
                s if isinstance(s, GuardedSolver) else GuardedSolver(s, spec.policy)
                for s in solvers
            ]
        self.solvers = solvers
        self.by_name = {s.name: s for s in solvers}
        self.config = spec.config
        self.performance_threshold = spec.performance_threshold
        self.telemetry_config = spec.telemetry
        self.chaos_process = spec.chaos_process
        self.parse_cache = {}
        self.journal = None
        if spec.journal_path:
            self.journal = self._open_sidecar(spec.journal_path, spec.journal_meta)

    @staticmethod
    def _open_sidecar(journal_path, meta):
        from repro.robustness.journal import (
            CampaignJournal,
            JournalError,
            sidecar_path,
        )

        path = sidecar_path(journal_path, os.getpid())
        try:
            journal = CampaignJournal(path)
            journal.ensure_meta(**meta)
        except JournalError:
            # A stale sidecar from a differently-parameterized run (a
            # recycled pid): its partials cannot line up — start over.
            os.remove(path)
            journal = CampaignJournal(path)
            journal.ensure_meta(**meta)
        # Sidecars are wire format, not archive: always carry the
        # unknown-kind split so it survives a resume merge (the main
        # journal still gates on the campaign's own flag).
        journal.unknown_split = True
        return journal

    def scripts_for(self, seed_texts):
        """Parse (and thereby typecheck) seed texts, cached per worker."""
        scripts = []
        for text in seed_texts:
            script = self.parse_cache.get(text)
            if script is None:
                from repro.smtlib.parser import parse_script

                script = self.parse_cache[text] = parse_script(text)
            scripts.append(script)
        return scripts


def _init_worker(spec):
    global _STATE
    if spec.containment is not None:
        # Before anything else allocates: the rlimits bound the whole
        # worker lifetime, solver construction included.
        spec.containment.apply()
    _STATE = _WorkerState(spec)


def install_worker_state(spec):
    """Adopt the calling process as a campaign worker (the backend seam).

    Pool children get here via the executor's initializer; a socket
    fleet worker (:mod:`repro.distributed.worker`) calls it directly
    after receiving its spec frame. Either way the process ends up with
    the same :class:`_WorkerState` — same solvers, caches, containment
    — so every transport runs leases through identical machinery.
    """
    _init_worker(spec)


def run_worker_task(task):
    """Execute one :class:`ShardTask` against the installed worker state.

    The public name for :func:`_run_shard`, for callers outside the
    executor (tcp fleet workers). The returned payload is JSON-clean:
    it crosses pickling pipes and socket frames identically.
    """
    return _run_shard(task)


def _run_shard(task):
    """Run one shard in this worker; return a picklable payload."""
    from repro.robustness.journal import serialize_report

    state = _STATE
    scripts = state.scripts_for(task.seed_texts)
    if task.solver_names is None:
        solvers = state.solvers
    else:
        solvers = [state.by_name[name] for name in task.solver_names]
    for name in task.quarantined:
        solver = state.by_name.get(name)
        if solver is not None and hasattr(solver, "force_quarantine"):
            solver.force_quarantine()
    # One Telemetry per shard (not per worker): each payload carries a
    # clean per-shard snapshot, so the parent's merge — which sums
    # counters like sidecar journals sum cells — never double-counts a
    # long-lived worker's history.
    from repro.observability.telemetry import Telemetry

    telemetry = Telemetry.from_config(state.telemetry_config)
    try:
        tool = YinYang(
            solvers,
            config=state.config,
            performance_threshold=state.performance_threshold,
            telemetry=telemetry,
            strategy=task.strategy,
        )
        if task.lease_id is None:
            report = tool.run_iterations(
                task.oracle,
                scripts,
                list(task.logics),
                shard_indices(task.iterations, task.shard, task.of),
                seed=task.seed,
            )
        else:
            report = _run_leased(state, tool, task, scripts)
        telemetry_snapshot = telemetry.snapshot() if telemetry is not None else None
    finally:
        if telemetry is not None:
            telemetry.close()
    # Bisected child leases (explicit ``indices``) never write the pid
    # sidecar: only a whole strided shard is a unit the campaign-resume
    # merge understands, and a child's partial report must not shadow it.
    if state.journal is not None and task.cell is not None and task.indices is None:
        state.journal.record_shard(tuple(task.cell), task.shard, task.of, report)
    return {
        "report": serialize_report(report, unknown_split=True),
        "elapsed": report.elapsed,
        "pid": os.getpid(),
        "telemetry": telemetry_snapshot,
        "guards": [
            s.guard_state() for s in solvers if hasattr(s, "guard_state")
        ],
    }


def _run_leased(state, tool, task, scripts):
    """The supervised per-iteration loop for one shard lease.

    Order per iteration: replay a checkpoint if one exists, else
    heartbeat (so a death at this iteration is attributable), fire any
    planned chaos fault, run the iteration, checkpoint it. Because each
    iteration is self-contained, the merge of per-iteration reports is
    exactly the report of one uninterrupted ``run_iterations`` call
    over the same indices — crash recovery cannot change the campaign's
    output, only how many times the work was attempted.
    """
    from repro.robustness.journal import (
        ShardProgress,
        deserialize_report,
        serialize_report,
    )
    from repro.robustness.supervisor import write_heartbeat

    if task.indices is not None:
        indices = list(task.indices)
    else:
        indices = list(shard_indices(task.iterations, task.shard, task.of))
    progress = None
    if task.progress_path:
        progress = ShardProgress(
            task.progress_path,
            meta={
                "seed": task.seed,
                "iterations": task.iterations,
                "shard": task.shard,
                "of": task.of,
                "strategy": task.strategy,
            },
        )
    work = tool.prepare_work(task.oracle, scripts, list(task.logics))
    # The incremental session's lifetime is the lease, not one index
    # batch: created here, passed into every run_iterations call, and
    # destroyed (with the lease) below. A lease retried after a crash
    # builds a fresh session, and the session's reuse is answer-
    # invariant, so shard re-execution cannot observe cache state.
    session = tool.make_session(work)
    chaos = state.chaos_process
    reports = []
    try:
        for index in indices:
            if progress is not None and index in progress.completed:
                reports.append(deserialize_report(progress.completed[index]))
                continue
            if task.heartbeat_dir:
                write_heartbeat(
                    task.heartbeat_dir, task.lease_id, os.getpid(), task.attempt, index
                )
            if chaos is not None:
                chaos.fire(index, task.attempt)
            report = tool.run_iterations(
                task.oracle,
                scripts,
                list(task.logics),
                [index],
                seed=task.seed,
                work=work,
                session=session,
            )
            if progress is not None:
                progress.record(index, serialize_report(report, unknown_split=True))
            reports.append(report)
    finally:
        if session is not None:
            session.close()
    return merge_shard_reports(reports)


def reconstruct_iteration_script(config, strategy, oracle, seed_texts, logics, seed, index):
    """Rebuild iteration ``index``'s mutated script text in the parent.

    Used for poison artifacts: the killer iteration's formula is a pure
    function of ``(strategy, seed, index)``, so the coordinator can
    regenerate it without any worker — mutation needs no solvers.
    Returns ``None`` when the iteration's mutation draw failed (such an
    iteration runs no solver and can only die to injected chaos).
    """
    from repro.core.yinyang import iteration_rng
    from repro.errors import MutationError
    from repro.observability.telemetry import NULL_TELEMETRY
    from repro.smtlib.ast import fresh_scope
    from repro.smtlib.parser import parse_script
    from repro.smtlib.printer import print_script
    from repro.strategies.registry import make_strategy

    strat = make_strategy(strategy, config.fusion)
    scripts = [parse_script(text) for text in seed_texts]
    work = strat.prepare(oracle, scripts, list(logics))
    rng = iteration_rng(seed, index)
    with fresh_scope():
        try:
            mutant = strat.mutate(rng, work, NULL_TELEMETRY)
        except MutationError:
            return None
        return print_script(mutant.script)


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class ShardedPool:
    """A persistent pool of campaign workers (context manager).

    Created once and reused across every cell of a campaign: worker
    startup (spawn + imports + solver construction) is paid once, and
    the per-worker parse cache keeps earning across cells that share
    seed corpora.
    """

    def __init__(self, workers, spec):
        self.workers = max(1, workers)
        self.spec = spec
        self._futures = []
        self._closed = False
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=_spawn_context(),
            initializer=_init_worker,
            initargs=(spec,),
        )

    def submit(self, task):
        if self._closed:
            raise RuntimeError("cannot submit to a shut-down ShardedPool")
        future = self._executor.submit(_run_shard, task)
        self._futures.append(future)
        return future

    def worker_exitcodes(self):
        """Exit codes of the pool's worker processes, by pid.

        ``None`` means still alive. Reads the executor's process table —
        there is no public API for this, but the attribute has been
        stable across CPython versions and the supervisor needs it to
        attribute deaths.
        """
        processes = getattr(self._executor, "_processes", None) or {}
        return {pid: proc.exitcode for pid, proc in list(processes.items())}

    def shutdown(self, wait=True):
        # Idempotent: teardown can arrive twice (context-manager exit
        # after an explicit coordinator shutdown, or an error path that
        # already closed the pool) and the second call must be a no-op
        # rather than re-killing a pool another owner may have replaced.
        if self._closed:
            return
        self._closed = True
        # cancel_futures: once the pool is coming down (error or exit),
        # queued shards must be dropped, not left to run against a
        # half-torn-down parent.
        self._executor.shutdown(wait=wait, cancel_futures=True)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.shutdown()
        if exc_type is None:
            # Surface a worker failure the caller never gathered (e.g.
            # a shard whose result was skipped): exiting cleanly while
            # a shard silently died would hide real campaign failures.
            for future in self._futures:
                if future.done() and not future.cancelled():
                    error = future.exception()
                    if error is not None:
                        raise error
        return False


class SupervisedPoolBackend:
    """The process backend a :class:`~repro.robustness.supervisor.Supervisor`
    drives: a :class:`ShardedPool` that can be respawned after it breaks.

    Owns the heartbeat directory workers write into (a private temp dir
    unless one is supplied) and translates pool breakage into the
    supervisor's vocabulary: ``respawn()`` tears down the broken
    executor, reports how every old worker exited (by pid), and stands
    up a fresh pool so requeued leases have somewhere to run.
    """

    broken_exceptions = (BrokenProcessPool,)

    def __init__(self, workers, spec, heartbeat_dir=None):
        self.workers = max(1, workers)
        self.spec = spec
        self._closed = False
        self._own_heartbeat_dir = heartbeat_dir is None
        self.heartbeat_dir = (
            tempfile.mkdtemp(prefix="repro-heartbeat-")
            if heartbeat_dir is None
            else os.fspath(heartbeat_dir)
        )
        self.pool = ShardedPool(self.workers, spec)

    def submit(self, task):
        return self.pool.submit(task)

    def respawn(self):
        """Replace the broken pool; return {pid: exitcode} of old workers."""
        if self._closed:
            raise RuntimeError("cannot respawn a closed SupervisedPoolBackend")
        old = self.pool
        processes = getattr(old._executor, "_processes", None)
        processes = dict(processes) if processes else {}
        try:
            old._executor.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        exitcodes = {}
        for pid, proc in processes.items():
            try:
                proc.join(timeout=5)
                exitcodes[pid] = proc.exitcode
            except Exception:
                exitcodes[pid] = None
        self.pool = ShardedPool(self.workers, self.spec)
        return exitcodes

    def kill_worker(self, pid):
        """SIGKILL one worker (hang recovery: stale heartbeat)."""
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError:
            pass  # already gone

    def close(self):
        # Idempotent and exception-safe: a second close is a no-op, and
        # the heartbeat dir is removed even when the pool's shutdown
        # raises — a coordinator tearing down after an error must not
        # leak temp dirs or double-kill a pool it already closed.
        if self._closed:
            return
        self._closed = True
        try:
            self.pool.shutdown()
        finally:
            if self._own_heartbeat_dir:
                shutil.rmtree(self.heartbeat_dir, ignore_errors=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


def collect_shard(payload):
    """Deserialize a worker payload back into a YinYangReport.

    The report's scripts come back as SMT-LIB text (exactly what the
    journal stores); ``elapsed`` — excluded from the deterministic
    serialization — is restored from the payload side-channel so
    throughput accounting still works.
    """
    from repro.robustness.journal import deserialize_report

    report = deserialize_report(payload["report"])
    report.elapsed = payload["elapsed"]
    return report


def run_sharded_test(
    solver_factory,
    config,
    performance_threshold,
    policy,
    oracle,
    seeds,
    iterations,
    workers,
    telemetry=None,
    strategy="fusion",
):
    """``YinYang.test(mode="process")``: one run sharded over a pool."""
    if solver_factory is None:
        raise ValueError(
            "process mode needs solver_factory: a picklable zero-argument "
            "callable returning the solvers under test (live solver objects "
            "cannot cross the spawn boundary)"
        )
    seed_texts, logics = serialize_seeds(seeds)
    if not seed_texts:
        raise ValueError("need at least one seed")
    spec = WorkerSpec(
        solver_factory=solver_factory,
        config=config,
        performance_threshold=performance_threshold,
        policy=policy,
        telemetry=telemetry.config() if telemetry is not None else None,
    )
    start = time.perf_counter()
    with ShardedPool(workers, spec) as pool:
        futures = {}
        for shard in range(pool.workers):
            if len(shard_indices(iterations, shard, pool.workers)) == 0:
                continue
            task = ShardTask(
                oracle=oracle,
                seed_texts=seed_texts,
                logics=logics,
                iterations=iterations,
                shard=shard,
                of=pool.workers,
                seed=config.seed,
                strategy=strategy,
            )
            futures[pool.submit(task)] = shard
        # Gather as shards finish, not in submission order: a failing
        # shard surfaces the moment it dies instead of queueing behind
        # every slower sibling (the pool's __exit__ then cancels the
        # rest). Results are keyed by shard so downstream merging stays
        # order-independent of completion timing.
        by_shard = {}
        for future in as_completed(futures):
            by_shard[futures[future]] = future.result()
        payloads = [by_shard[shard] for shard in sorted(by_shard)]
        merged = merge_shard_reports([collect_shard(p) for p in payloads])
    if telemetry is not None:
        for payload in payloads:
            if payload.get("telemetry") is not None:
                telemetry.merge_snapshot(payload["telemetry"])
    merged.elapsed = time.perf_counter() - start
    return merged
