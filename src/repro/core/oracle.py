"""Labeled seed formulas and oracle bookkeeping.

YinYang's guarantee ("absence of false positives, given that the seed
formulas are correctly labeled") rests on the seed labels, so seeds are
first-class objects carrying their oracle, originating logic, and —
when the generator built the formula around a model — that model, which
property tests use to double-check labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.solver.result import SolverResult


@dataclass
class LabeledSeed:
    """A seed formula with its ground-truth satisfiability."""

    script: object  # Script
    oracle: str  # "sat" | "unsat"
    logic: str = ""
    model: object = None  # Model witnessing "sat" labels, when known
    origin: str = ""  # generator name / benchmark family

    def __post_init__(self):
        if self.oracle not in ("sat", "unsat"):
            raise ValueError(f"bad oracle {self.oracle!r}")


@dataclass
class SeedCorpus:
    """A collection of labeled seeds, split by oracle (paper Figure 7)."""

    name: str
    seeds: list = field(default_factory=list)

    def add(self, seed):
        self.seeds.append(seed)

    def by_oracle(self, oracle):
        return [s for s in self.seeds if s.oracle == oracle]

    @property
    def sat_seeds(self):
        return self.by_oracle("sat")

    @property
    def unsat_seeds(self):
        return self.by_oracle("unsat")

    def counts(self):
        """(unsat_count, sat_count, total) — the Figure 7 row shape."""
        unsat = len(self.unsat_seeds)
        sat = len(self.sat_seeds)
        return unsat, sat, unsat + sat

    def validate(self, solver, max_seeds=None):
        """Cross-check seed labels against a solver (Section 4.1's
        "preprocessed all formulas with Z3 ... cross-checked with CVC4").

        Returns a list of (index, seed, solver_result) disagreements;
        ``unknown`` results are not disagreements.
        """
        mismatches = []
        seeds = self.seeds if max_seeds is None else self.seeds[:max_seeds]
        for index, seed in enumerate(seeds):
            outcome = solver.check_script(seed.script)
            if (
                outcome.result.is_definite
                and outcome.result is not SolverResult.from_string(seed.oracle)
            ):
                mismatches.append((index, seed, outcome.result))
        return mismatches
