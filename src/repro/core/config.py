"""Configuration for Semantic Fusion and the YinYang loop."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FusionConfig:
    """Knobs of the fusion algorithm (paper Section 3.4).

    - ``max_pairs`` — how many variable pairs (x, y) to fuse per run
      (each gets its own fresh ``z`` and fusion function).
    - ``substitution_probability`` — the chance that any given free
      occurrence of a fused variable is replaced by its inversion term
      (the paper replaces "randomly chosen occurrences ... possibly
      none").
    - ``coefficient_range`` — random coefficients ``c, c1..c3`` of the
      affine fusion functions are drawn from ``[1, coefficient_range]``
      (sign randomized; divisor coefficients are never zero).
    - ``schemes`` — restrict fusion-function families by name (empty =
      all families of Figure 6 plus registered extensions).
    """

    max_pairs: int = 2
    substitution_probability: float = 0.5
    coefficient_range: int = 4
    schemes: tuple = ()

    def __post_init__(self):
        if not 0.0 <= self.substitution_probability <= 1.0:
            raise ValueError("substitution_probability must be in [0, 1]")
        if self.max_pairs < 1:
            raise ValueError("max_pairs must be at least 1")
        if self.coefficient_range < 1:
            raise ValueError("coefficient_range must be at least 1")


@dataclass
class YinYangConfig:
    """Knobs of the YinYang main loop (Algorithm 1)."""

    fusion: FusionConfig = field(default_factory=FusionConfig)
    # Per the paper: "the solvers may report unknown, which could be
    # either seen as a crash or ignored".
    unknown_is_crash: bool = False
    max_iterations: int = 1000
    seed: int = 0
    # Optional mutant triage: a frozen, picklable
    # :class:`~repro.campaign.triage.TriagePolicy` that routes each
    # mutant to a solve-budget tier before checking. ``None`` (the
    # default) keeps the loop byte-identical to the pre-triage tool.
    # Declared ``object`` to avoid a core -> campaign import cycle.
    triage: object = None
    # Optional incremental solving: a frozen, picklable
    # :class:`~repro.solver.session.SessionConfig` that makes the loop
    # build one :class:`~repro.solver.session.SolverSession` per
    # cell/shard (outcome/theory caches, assumption-based warm SAT
    # starts). ``None``/``False`` is the cold loop, byte-identical to
    # the pre-session tool. Declared ``object`` to avoid a core ->
    # solver import at config time.
    incremental: object = None
