"""Semantic Fusion of SMT-LIB scripts (the paper's Algorithm 2).

SAT fusion (Proposition 1)::

    phi_sat = phi1[r_x(y,z)/x]_R  AND  phi2[r_y(x,z)/y]_R

UNSAT fusion (Proposition 2)::

    phi_unsat = (phi1[r_x/x]_R OR phi2[r_y/y]_R) AND z = f(x,y)
                AND x = r_x(y,z) AND y = r_y(x,z)

Mixed fusion (Section 3.2) combines one satisfiable and one
unsatisfiable seed: disjunction preserves satisfiability, conjunction
plus fusion constraints preserves unsatisfiability.

The entry points operate on whole :class:`~repro.smtlib.ast.Script`
objects: variable sets are made disjoint by renaming, declarations are
merged, and the result is a runnable script ending in ``check-sat`` —
exactly the artifact YinYang feeds to a solver under test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.config import FusionConfig
from repro.core.fusion_functions import pick_instance
from repro.core.substitution import random_occurrence_substitution
from repro.errors import FusionError
from repro.semantics.evaluator import evaluate
from repro.semantics.model import Model
from repro.smtlib import builder as b
from repro.smtlib.ast import (
    Assert,
    CheckSat,
    DeclareFun,
    Script,
    SetLogic,
    Var,
    fresh_name,
    substitute,
)
from repro.smtlib.sorts import INT, REAL, STRING

FUSIBLE_SORTS = (INT, REAL, STRING)


@dataclass
class FusionTriplet:
    """One fused variable pair: ``z = f(x, y)`` with its inversions."""

    z: Var
    x: Var
    y: Var
    instance: object

    @property
    def scheme(self):
        return self.instance.scheme


@dataclass
class FusionResult:
    """The fused script plus the provenance YinYang's reports need."""

    script: Script
    oracle: str
    triplets: list
    renaming: dict = field(default_factory=dict)  # phi2 old name -> new name
    replaced_occurrences: int = 0
    total_occurrences: int = 0

    def __str__(self):
        return str(self.script)


def _typed_free_vars(script):
    """Free variables of a script grouped by sort, deterministic order."""
    grouped = {}
    for var in script.free_variables():
        grouped.setdefault(var.sort, []).append(var)
    return grouped


def _rename_apart(phi1, phi2):
    """Rename phi2's variables that collide with phi1's.

    Returns ``(renamed_phi2_asserts, declarations, renaming_dict)``.
    """
    taken = {v.name for v in phi1.free_variables()}
    taken |= set(phi1.declarations)
    mapping = {}
    renaming = {}
    declarations = []
    for name, var in phi2.declarations.items():
        if name in taken:
            new_name = fresh_name(name)
            mapping[var] = Var(new_name, var.sort)
            renaming[name] = new_name
            declarations.append(Var(new_name, var.sort))
        else:
            declarations.append(var)
    asserts = [substitute(t, mapping) for t in phi2.asserts] if mapping else list(phi2.asserts)
    return asserts, declarations, renaming


def _random_pairs(vars1, vars2, rng, config):
    """The paper's ``random_map``: same-sort variable pairs to fuse."""
    pairs = []
    for sort in FUSIBLE_SORTS:
        xs = list(vars1.get(sort, []))
        ys = list(vars2.get(sort, []))
        if not xs or not ys:
            continue
        rng.shuffle(xs)
        rng.shuffle(ys)
        pairs.extend(zip(xs, ys))
    if not pairs:
        raise FusionError("no same-sort variable pair to fuse")
    rng.shuffle(pairs)
    return pairs[: config.max_pairs]


def _build_triplets(pairs, rng, config):
    triplets = []
    for x, y in pairs:
        z = Var(fresh_name("z"), x.sort)
        instance = pick_instance(x.sort, rng, config)
        triplets.append(FusionTriplet(z, x, y, instance))
    return triplets


def _variable_fusion(asserts1, asserts2, triplets, rng, config):
    """Algorithm 2's ``variable_fusion``: random inversion substitution."""
    replaced = total = 0
    for triplet in triplets:
        rx = triplet.instance.invert_x(triplet.x, triplet.y, triplet.z)
        ry = triplet.instance.invert_y(triplet.x, triplet.y, triplet.z)
        new1 = []
        for term in asserts1:
            term, r, t = random_occurrence_substitution(
                term, triplet.x, rx, rng, config.substitution_probability
            )
            replaced += r
            total += t
            new1.append(term)
        asserts1 = new1
        new2 = []
        for term in asserts2:
            term, r, t = random_occurrence_substitution(
                term, triplet.y, ry, rng, config.substitution_probability
            )
            replaced += r
            total += t
            new2.append(term)
        asserts2 = new2
    return asserts1, asserts2, replaced, total


def _merged_declarations(phi1, phi2_decls, triplets):
    out = []
    seen = set()
    for var in list(phi1.declarations.values()) + list(phi2_decls):
        if var.name not in seen:
            seen.add(var.name)
            out.append(var)
    for triplet in triplets:
        out.append(triplet.z)
    return out


def _assemble(logic, declarations, asserts):
    commands = []
    if logic:
        commands.append(SetLogic(logic))
    for var in declarations:
        commands.append(DeclareFun(var.name, (), var.sort))
    for term in asserts:
        commands.append(Assert(term))
    commands.append(CheckSat())
    return Script(commands)


def _merged_logic(phi1, phi2):
    """Keep the seeds' logic only when both agree (fusion may leave it
    anyway, e.g. multiplication makes linear seeds nonlinear — so the
    merged script drops the annotation unless the seeds share one)."""
    if phi1.logic is not None and phi1.logic == phi2.logic:
        return None
    return None


def fuse(oracle, phi1, phi2, rng=None, config=None):
    """Fuse two equisatisfiable scripts (Algorithm 2).

    ``oracle`` is ``"sat"`` or ``"unsat"`` — the shared satisfiability
    of the two seeds, which the fused script preserves by construction.
    Returns a :class:`FusionResult`.
    """
    if oracle not in ("sat", "unsat"):
        raise FusionError(f"oracle must be 'sat' or 'unsat', got {oracle!r}")
    rng = rng or random.Random()
    config = config or FusionConfig()

    asserts1 = list(phi1.asserts)
    asserts2, phi2_decls, renaming = _rename_apart(phi1, phi2)
    phi2_view = Script(
        [DeclareFun(v.name, (), v.sort) for v in phi2_decls]
        + [Assert(t) for t in asserts2]
    )

    vars1 = _typed_free_vars(phi1)
    vars2 = _typed_free_vars(phi2_view)
    pairs = _random_pairs(vars1, vars2, rng, config)
    triplets = _build_triplets(pairs, rng, config)

    asserts1, asserts2, replaced, total = _variable_fusion(
        asserts1, asserts2, triplets, rng, config
    )

    declarations = _merged_declarations(phi1, phi2_decls, triplets)
    if oracle == "sat":
        # Formula conjunction: merge the assert blocks.
        fused_asserts = asserts1 + asserts2
    else:
        # Formula disjunction plus the fusion constraints.
        disjunction = b.or_(
            _conjoin(asserts1),
            _conjoin(asserts2),
        )
        fused_asserts = [disjunction]
        for triplet in triplets:
            fused_asserts.extend(
                triplet.instance.constraints(triplet.x, triplet.y, triplet.z)
            )

    script = _assemble(_merged_logic(phi1, phi2), declarations, fused_asserts)
    return FusionResult(
        script=script,
        oracle=oracle,
        triplets=triplets,
        renaming=renaming,
        replaced_occurrences=replaced,
        total_occurrences=total,
    )


def fuse_mixed(phi_sat, phi_unsat, want, rng=None, config=None):
    """Mixed fusion (Section 3.2): one satisfiable and one unsatisfiable seed.

    ``want="sat"`` uses disjunction (satisfiable by the sat seed);
    ``want="unsat"`` uses conjunction plus fusion constraints
    (unsatisfiable because the unsat seed's conjunct cannot hold).
    """
    if want not in ("sat", "unsat"):
        raise FusionError(f"want must be 'sat' or 'unsat', got {want!r}")
    rng = rng or random.Random()
    config = config or FusionConfig()

    asserts1 = list(phi_sat.asserts)
    asserts2, phi2_decls, renaming = _rename_apart(phi_sat, phi_unsat)
    phi2_view = Script(
        [DeclareFun(v.name, (), v.sort) for v in phi2_decls]
        + [Assert(t) for t in asserts2]
    )
    pairs = _random_pairs(
        _typed_free_vars(phi_sat), _typed_free_vars(phi2_view), rng, config
    )
    triplets = _build_triplets(pairs, rng, config)
    asserts1, asserts2, replaced, total = _variable_fusion(
        asserts1, asserts2, triplets, rng, config
    )
    declarations = _merged_declarations(phi_sat, phi2_decls, triplets)
    if want == "sat":
        fused_asserts = [b.or_(_conjoin(asserts1), _conjoin(asserts2))]
    else:
        fused_asserts = asserts1 + asserts2
        for triplet in triplets:
            fused_asserts.extend(
                triplet.instance.constraints(triplet.x, triplet.y, triplet.z)
            )
    script = _assemble(None, declarations, fused_asserts)
    return FusionResult(
        script=script,
        oracle=want,
        triplets=triplets,
        renaming=renaming,
        replaced_occurrences=replaced,
        total_occurrences=total,
    )


def _conjoin(asserts):
    if not asserts:
        return b.lift(True)
    if len(asserts) == 1:
        return asserts[0]
    return b.and_(*asserts)


def fuse_scripts(oracle, phi1, phi2, seed=0, config=None):
    """Convenience wrapper returning just the fused :class:`Script`."""
    return fuse(oracle, phi1, phi2, random.Random(seed), config).script


class _RecordingModel(Model):
    """A model copy that records which division-at-zero keys are consulted."""

    def __init__(self, base):
        super().__init__(dict(base.items()))
        self.requested = []

    def div_at_zero(self, op, numerator):
        self.requested.append((op, numerator))
        return super().div_at_zero(op, numerator)


def fused_model(result, model1, model2):
    """The constructed model of Proposition 1: ``M1 ∪ M2 ∪ {z -> f(x,y)}``.

    ``model2`` is keyed by the *original* phi2 variable names; the
    renaming recorded in ``result`` is applied. Only meaningful for SAT
    fusion.

    Proposition 1's proof needs ``M(r_x(y, z)) = M(x)``. When an
    inversion function divides by zero under the model (e.g. the
    multiplication scheme's ``z div y`` with ``M(y) = 0``), SMT-LIB
    leaves the division uninterpreted — so the constructed model *pins*
    the division-at-zero choice to the value that makes the inversion
    exact, exactly as the proof's model is free to do.
    """
    merged = Model()
    for name, value in model1.items():
        merged[name] = value
    for name, value in model2.items():
        merged[result.renaming.get(name, name)] = value
    for triplet in result.triplets:
        fusion_term = triplet.instance.fusion(triplet.x, triplet.y)
        merged[triplet.z.name] = evaluate(fusion_term, merged)
    for triplet in result.triplets:
        for build, target in (
            (triplet.instance.invert_x, triplet.x),
            (triplet.instance.invert_y, triplet.y),
        ):
            inversion = build(triplet.x, triplet.y, triplet.z)
            expected = merged[target.name]
            probe = _RecordingModel(merged)
            if evaluate(inversion, probe) == expected:
                continue
            if len(set(probe.requested)) == 1:
                op, numerator = probe.requested[0]
                merged.set_div_at_zero(op, numerator, expected)
    return merged
