"""Semantic Fusion of SMT-LIB scripts (the paper's Algorithm 2).

SAT fusion (Proposition 1)::

    phi_sat = phi1[r_x(y,z)/x]_R  AND  phi2[r_y(x,z)/y]_R

UNSAT fusion (Proposition 2)::

    phi_unsat = (phi1[r_x/x]_R OR phi2[r_y/y]_R) AND z = f(x,y)
                AND x = r_x(y,z) AND y = r_y(x,z)

Mixed fusion (Section 3.2) combines one satisfiable and one
unsatisfiable seed: disjunction preserves satisfiability, conjunction
plus fusion constraints preserves unsatisfiability.

The entry points operate on whole :class:`~repro.smtlib.ast.Script`
objects: variable sets are made disjoint by renaming, declarations are
merged, and the result is a runnable script ending in ``check-sat`` —
exactly the artifact YinYang feeds to a solver under test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.config import FusionConfig
from repro.core.fusion_functions import pick_instance
from repro.core.substitution import random_occurrence_substitution
from repro.errors import FusionError
from repro.semantics.evaluator import evaluate
from repro.semantics.model import Model
from repro.smtlib import builder as b
from repro.smtlib.ast import (
    Assert,
    CheckSat,
    DeclareFun,
    Script,
    SetLogic,
    Var,
    fresh_name,
    fresh_name_position,
    free_vars,
    mk_var,
    skip_fresh_names,
    substitute,
)
from repro.smtlib import theory as _theory
from repro.smtlib.sorts import INT, REAL, STRING  # noqa: F401  (re-export)

# Sorts eligible for variable-pair fusion, in theory-registration order
# ((Int, Real, String) first, then each bit-vector generator width).
# Iteration below draws no randomness for sorts absent from a seed, so
# appending new theories here leaves existing-campaign RNG streams (and
# therefore golden journals) untouched.
FUSIBLE_SORTS = tuple(_theory.fusible_sorts())


@dataclass
class FusionTriplet:
    """One fused variable pair: ``z = f(x, y)`` with its inversions."""

    z: Var
    x: Var
    y: Var
    instance: object

    @property
    def scheme(self):
        return self.instance.scheme


@dataclass
class FusionResult:
    """The fused script plus the provenance YinYang's reports need."""

    script: Script
    oracle: str
    triplets: list
    renaming: dict = field(default_factory=dict)  # phi2 old name -> new name
    replaced_occurrences: int = 0
    total_occurrences: int = 0

    def __str__(self):
        return str(self.script)


def _seed_view(script):
    """Cached fusion-facing view of a seed script.

    Returns ``(taken_names, decl_items, vars_by_sort)`` — the name set
    occupied by the script, its zero-arity declarations in script order,
    and its free variables grouped by sort. Seed scripts are probed on
    every fusion, so this consolidates what used to be several
    property-copy-and-validate round trips into one identity-validated
    cache (immutable values; callers copy what they mutate).
    """
    commands = script.commands
    cached = getattr(script, "_seed_view_cache", None)
    if cached is not None:
        prev, view = cached
        # List equality short-circuits on element identity in C (and a
        # rebuilt-but-equal command yields the same view anyway).
        if prev == commands:
            return view
    decls = script.declarations
    fvars = script.free_variables()
    taken = frozenset(v.name for v in fvars) | frozenset(decls)
    grouped = {}
    for var in fvars:
        grouped.setdefault(var.sort, []).append(var)
    view = (
        taken,
        tuple(decls.items()),
        {sort: tuple(vs) for sort, vs in grouped.items()},
    )
    script._seed_view_cache = (list(commands), view)
    return view


def _typed_free_vars(script):
    """Free variables of a script grouped by sort, deterministic order.

    Returns the seed view's dict of *tuples* — callers copy what they
    shuffle (see :func:`_random_pairs`)."""
    _, _, vars_by_sort = _seed_view(script)
    return vars_by_sort


def _grouped_free_vars(asserts):
    """Free variables of ``asserts`` grouped by sort, in the same
    deterministic order :meth:`Script.free_variables` produces
    (per-assert name-sorted, first occurrence wins)."""
    seen = {}
    for term in asserts:
        for var in sorted(free_vars(term), key=lambda v: v.name):
            seen.setdefault(var.name, var)
    grouped = {}
    for var in seen.values():
        grouped.setdefault(var.sort, []).append(var)
    return grouped


def _rename_apart(phi1, phi2):
    """Rename phi2's variables that collide with phi1's.

    Returns ``(renamed_phi2_asserts, declarations, renaming_dict,
    renamed_vars_by_sort)``.

    The renamed view is cached on ``phi2``: the fresh names drawn are a
    pure function of the gensym position (campaigns reset it every
    iteration via ``fresh_scope``), so re-fusing the same seed pair
    recomputes the identical renaming. The cache keys on the drawn
    name mapping (validated against the script's current command
    objects) and replays any extra gensym draws the substitution made,
    keeping the gensym stream bit-identical with an uncached run.
    """
    taken, _, _ = _seed_view(phi1)
    _, phi2_decl_items, _ = _seed_view(phi2)
    mapping = {}
    renaming = {}
    declarations = []
    for name, var in phi2_decl_items:
        if name in taken:
            new_name = fresh_name(name)
            new_var = mk_var(new_name, var.sort)
            mapping[var] = new_var
            renaming[name] = new_name
            declarations.append(new_var)
        else:
            declarations.append(var)

    key = tuple(renaming.items())
    commands = phi2.commands
    cache = getattr(phi2, "_rename_cache", None)
    if cache is not None:
        entry = cache.get(key)
        if entry is not None:
            prev_commands, asserts, vars_by_sort, extra_draws = entry
            if prev_commands == commands:
                skip_fresh_names(extra_draws)
                # The cached vars_by_sort holds tuples and callers only
                # read it (pair selection copies before shuffling), so
                # it is shared as-is; the assert list is copied because
                # callers rebind per-element results into fresh lists.
                return list(asserts), declarations, renaming, vars_by_sort

    before = fresh_name_position()
    if mapping:
        asserts = [substitute(t, mapping) for t in phi2.asserts]
    else:
        asserts = list(phi2.asserts)
    extra_draws = fresh_name_position() - before
    vars_by_sort = {
        s: tuple(vs) for s, vs in _grouped_free_vars(asserts).items()
    }
    if cache is None:
        cache = phi2._rename_cache = {}
    elif len(cache) >= 16:
        cache.clear()  # bound per-seed memory in very large corpora
    cache[key] = (list(commands), list(asserts), vars_by_sort, extra_draws)
    return asserts, declarations, renaming, vars_by_sort


def _random_pairs(vars1, vars2, rng, config):
    """The paper's ``random_map``: same-sort variable pairs to fuse."""
    pairs = []
    for sort in FUSIBLE_SORTS:
        xs = list(vars1.get(sort, []))
        ys = list(vars2.get(sort, []))
        if not xs or not ys:
            continue
        rng.shuffle(xs)
        rng.shuffle(ys)
        pairs.extend(zip(xs, ys))
    if not pairs:
        raise FusionError("no same-sort variable pair to fuse")
    rng.shuffle(pairs)
    return pairs[: config.max_pairs]


def _build_triplets(pairs, rng, config):
    triplets = []
    for x, y in pairs:
        z = mk_var(fresh_name("z"), x.sort)
        instance = pick_instance(x.sort, rng, config)
        triplets.append(FusionTriplet(z, x, y, instance))
    return triplets


def _variable_fusion(asserts1, asserts2, triplets, rng, config):
    """Algorithm 2's ``variable_fusion``: random inversion substitution."""
    replaced = total = 0
    probability = config.substitution_probability
    for triplet in triplets:
        x, y, z = triplet.x, triplet.y, triplet.z
        rx = triplet.instance.invert_x(x, y, z)
        ry = triplet.instance.invert_y(x, y, z)
        for var, inversion, asserts in ((x, rx, asserts1), (y, ry, asserts2)):
            name = var.name
            new = []
            for term in asserts:
                # An assert whose cached free-name set lacks the
                # variable has zero occurrences: keep it as-is without
                # the substitution round trip (no RNG draw happens for
                # zero occurrences, so the stream is unchanged).
                names = term.__dict__.get("_free_names")
                if names is not None and name not in names:
                    new.append(term)
                    continue
                term, r, t = random_occurrence_substitution(
                    term, var, inversion, rng, probability
                )
                replaced += r
                total += t
                new.append(term)
            if var is x:
                asserts1 = new
            else:
                asserts2 = new
    return asserts1, asserts2, replaced, total


def _merged_declarations(phi1, phi2_decls, triplets):
    out = []
    seen = set()
    _, decl_items, _ = _seed_view(phi1)
    for _, var in decl_items:
        seen.add(var.name)
        out.append(var)
    for var in phi2_decls:
        if var.name not in seen:
            seen.add(var.name)
            out.append(var)
    for triplet in triplets:
        out.append(triplet.z)
    return out


_CHECK_SAT = CheckSat()


def _assemble(logic, declarations, asserts):
    commands = []
    append = commands.append
    if logic:
        append(SetLogic(logic))
    for var in declarations:
        # A variable's declare-fun is a pure function of the (interned)
        # Var node; cache it there so repeated fusions of the same seeds
        # reuse the command objects.
        d = var.__dict__
        cmd = d.get("_decl_cmd")
        if cmd is None:
            cmd = d["_decl_cmd"] = DeclareFun(var.name, (), var.sort)
        append(cmd)
    for term in asserts:
        d = term.__dict__
        cmd = d.get("_assert_cmd")
        if cmd is None:
            cmd = d["_assert_cmd"] = Assert(term)
        append(cmd)
    append(_CHECK_SAT)
    return Script(commands)


def _merged_logic(phi1, phi2):
    """Keep the seeds' logic only when both agree (fusion may leave it
    anyway, e.g. multiplication makes linear seeds nonlinear — so the
    merged script drops the annotation unless the seeds share one)."""
    if phi1.logic is not None and phi1.logic == phi2.logic:
        return None
    return None


def fuse(oracle, phi1, phi2, rng=None, config=None):
    """Fuse two equisatisfiable scripts (Algorithm 2).

    ``oracle`` is ``"sat"`` or ``"unsat"`` — the shared satisfiability
    of the two seeds, which the fused script preserves by construction.
    Returns a :class:`FusionResult`.
    """
    if oracle not in ("sat", "unsat"):
        raise FusionError(f"oracle must be 'sat' or 'unsat', got {oracle!r}")
    rng = rng or random.Random()
    config = config or FusionConfig()

    asserts1 = list(phi1.asserts)
    asserts2, phi2_decls, renaming, vars2 = _rename_apart(phi1, phi2)

    vars1 = _typed_free_vars(phi1)
    pairs = _random_pairs(vars1, vars2, rng, config)
    triplets = _build_triplets(pairs, rng, config)

    asserts1, asserts2, replaced, total = _variable_fusion(
        asserts1, asserts2, triplets, rng, config
    )

    declarations = _merged_declarations(phi1, phi2_decls, triplets)
    if oracle == "sat":
        # Formula conjunction: merge the assert blocks.
        fused_asserts = asserts1 + asserts2
    else:
        # Formula disjunction plus the fusion constraints.
        disjunction = b.or_(
            _conjoin(asserts1),
            _conjoin(asserts2),
        )
        fused_asserts = [disjunction]
        for triplet in triplets:
            fused_asserts.extend(
                triplet.instance.constraints(triplet.x, triplet.y, triplet.z)
            )

    script = _assemble(_merged_logic(phi1, phi2), declarations, fused_asserts)
    return FusionResult(
        script=script,
        oracle=oracle,
        triplets=triplets,
        renaming=renaming,
        replaced_occurrences=replaced,
        total_occurrences=total,
    )


def fuse_mixed(phi_sat, phi_unsat, want, rng=None, config=None):
    """Mixed fusion (Section 3.2): one satisfiable and one unsatisfiable seed.

    ``want="sat"`` uses disjunction (satisfiable by the sat seed);
    ``want="unsat"`` uses conjunction plus fusion constraints
    (unsatisfiable because the unsat seed's conjunct cannot hold).
    """
    if want not in ("sat", "unsat"):
        raise FusionError(f"want must be 'sat' or 'unsat', got {want!r}")
    rng = rng or random.Random()
    config = config or FusionConfig()

    asserts1 = list(phi_sat.asserts)
    asserts2, phi2_decls, renaming, vars2 = _rename_apart(phi_sat, phi_unsat)
    pairs = _random_pairs(_typed_free_vars(phi_sat), vars2, rng, config)
    triplets = _build_triplets(pairs, rng, config)
    asserts1, asserts2, replaced, total = _variable_fusion(
        asserts1, asserts2, triplets, rng, config
    )
    declarations = _merged_declarations(phi_sat, phi2_decls, triplets)
    if want == "sat":
        fused_asserts = [b.or_(_conjoin(asserts1), _conjoin(asserts2))]
    else:
        fused_asserts = asserts1 + asserts2
        for triplet in triplets:
            fused_asserts.extend(
                triplet.instance.constraints(triplet.x, triplet.y, triplet.z)
            )
    script = _assemble(None, declarations, fused_asserts)
    return FusionResult(
        script=script,
        oracle=want,
        triplets=triplets,
        renaming=renaming,
        replaced_occurrences=replaced,
        total_occurrences=total,
    )


def _conjoin(asserts):
    if not asserts:
        return b.lift(True)
    if len(asserts) == 1:
        return asserts[0]
    return b.and_(*asserts)


def fuse_scripts(oracle, phi1, phi2, seed=0, config=None):
    """Convenience wrapper returning just the fused :class:`Script`."""
    return fuse(oracle, phi1, phi2, random.Random(seed), config).script


class _RecordingModel(Model):
    """A model copy that records which division-at-zero keys are consulted."""

    def __init__(self, base):
        super().__init__(dict(base.items()))
        self.requested = []

    def div_at_zero(self, op, numerator):
        self.requested.append((op, numerator))
        return super().div_at_zero(op, numerator)


def fused_model(result, model1, model2):
    """The constructed model of Proposition 1: ``M1 ∪ M2 ∪ {z -> f(x,y)}``.

    ``model2`` is keyed by the *original* phi2 variable names; the
    renaming recorded in ``result`` is applied. Only meaningful for SAT
    fusion.

    Proposition 1's proof needs ``M(r_x(y, z)) = M(x)``. When an
    inversion function divides by zero under the model (e.g. the
    multiplication scheme's ``z div y`` with ``M(y) = 0``), SMT-LIB
    leaves the division uninterpreted — so the constructed model *pins*
    the division-at-zero choice to the value that makes the inversion
    exact, exactly as the proof's model is free to do.
    """
    merged = Model()
    for name, value in model1.items():
        merged[name] = value
    for name, value in model2.items():
        merged[result.renaming.get(name, name)] = value
    for triplet in result.triplets:
        fusion_term = triplet.instance.fusion(triplet.x, triplet.y)
        merged[triplet.z.name] = evaluate(fusion_term, merged)
    for triplet in result.triplets:
        for build, target in (
            (triplet.instance.invert_x, triplet.x),
            (triplet.instance.invert_y, triplet.y),
        ):
            inversion = build(triplet.x, triplet.y, triplet.z)
            expected = merged[target.name]
            probe = _RecordingModel(merged)
            if evaluate(inversion, probe) == expected:
                continue
            if len(set(probe.requested)) == 1:
                op, numerator = probe.requested[0]
                merged.set_div_at_zero(op, numerator, expected)
    return merged
