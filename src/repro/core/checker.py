"""The shared oracle checker: one classification path for every strategy.

Algorithm 1's "ask the solver, compare against the oracle" tail used to
live inside ``YinYang._check_one`` with near-copies in the ConcatFuzz
and ablation paths. It now lives here, once: every mutation strategy's
output — a :class:`~repro.strategies.base.Mutant` carrying its script,
expected verdict and provenance — flows through :func:`check_mutant`,
which classifies each solver's behaviour into the paper's bug kinds:

- **crash** — abnormal termination (:class:`SolverCrash`);
- **harness** — a contained non-solver exception (GuardedSolver);
- **soundness** — a definite answer contradicting the oracle;
- **performance** — a check exceeding the wall-clock threshold;
- **unknown** — ``unknown`` with an internal error note, or any
  ``unknown`` under the strict ``unknown_is_crash`` policy.

The checker draws no randomness and writes records in solver order,
so its output is a pure function of (mutant, solver states) — the
property every determinism guarantee upstream rests on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.solver.result import SolverCrash, SolverResult

SOUNDNESS = "soundness"
CRASH = "crash"
PERFORMANCE = "performance"
UNKNOWN_BUG = "unknown"
HARNESS = "harness"

# A GuardedSolver tags contained non-SolverCrash exceptions and
# quarantine refusals with these crash kinds (string-matched here to
# avoid a core -> robustness import).
HARNESS_ERROR_KIND = "harness-error"
QUARANTINED_KIND = "quarantined"

# The two kinds of ``unknown``: a *budget* unknown would have been
# decided with more steps/time (round/sat budget, enumeration budget,
# timeout); a *genuine* unknown hit a solver limitation. The reference
# solver stamps ``outcome.stats["unknown_kind"]``; for solvers that do
# not (external binaries, fakes), the reason string is classified here.
UNKNOWN_BUDGET = "budget"
UNKNOWN_GENUINE = "genuine"

_BUDGET_REASONS = frozenset(
    {"round budget exhausted", "sat budget exhausted", "timeout"}
)


def unknown_kind(reason="", stats=None):
    """Classify an ``unknown`` outcome as budget-bounded or genuine.

    The ``unknown_kind`` stat stamped by the reference solver takes
    precedence; the reason-string fallback covers wrappers that build
    their own outcomes (the guard's watchdog deadline is a wall-clock
    budget) and external solvers.
    """
    if stats:
        stamped = stats.get("unknown_kind")
        if stamped == UNKNOWN_BUDGET:
            return UNKNOWN_BUDGET
        if stamped:
            return UNKNOWN_GENUINE
    if reason in _BUDGET_REASONS or reason.startswith("guard: check exceeded"):
        return UNKNOWN_BUDGET
    return UNKNOWN_GENUINE


@dataclass
class BugRecord:
    """One bug-triggering mutant."""

    kind: str  # soundness | crash | performance | unknown
    solver: str
    oracle: str
    reported: str  # what the solver answered / crash message
    script: object  # the mutated Script
    seed_indices: tuple = (0, 0)
    schemes: tuple = ()
    logic: str = ""
    elapsed: float = 0.0
    note: str = ""  # solver-side detail (e.g. internal fault id / stderr)
    iteration: int = -1  # global iteration id within the run/cell
    strategy: str = "fusion"  # the mutation strategy that built the script

    def __str__(self):
        return (
            f"[{self.kind}] {self.solver}: expected {self.oracle}, "
            f"got {self.reported} (schemes: {', '.join(self.schemes) or '-'})"
        )


def classify_answer(result, oracle, reason="", unknown_is_crash=False):
    """Classify a definite-or-unknown solver answer against ``oracle``.

    Returns one of ``SOUNDNESS``/``UNKNOWN_BUG``/``None`` (no bug) —
    the decision table shared by the campaign loop and the ablation
    benchmarks' retrigger predicates.
    """
    if result is SolverResult.UNKNOWN:
        if reason.startswith("error:") or unknown_is_crash:
            return UNKNOWN_BUG
        return None
    if str(result) != oracle:
        return SOUNDNESS
    return None


def retriggers_bug(solver, script, oracle, kind):
    """Does ``script`` still expose a ``kind`` bug in ``solver``?

    The RQ4 retrigger predicate (re-running ancestors of found bugs
    through an ablated mutator), phrased via :func:`classify_answer` so
    it can never drift from the campaign's own classification.
    """
    try:
        outcome = solver.check_script(script)
    except SolverCrash:
        return kind == CRASH
    if kind == SOUNDNESS:
        return (
            outcome.result.is_definite
            and classify_answer(outcome.result, oracle) == SOUNDNESS
        )
    return False


def check_mutant(
    solvers,
    mutant,
    report,
    tel,
    performance_threshold=None,
    unknown_is_crash=False,
    iteration=-1,
    directive=None,
    session=None,
):
    """Check one mutant against every solver, folding records into
    ``report``. Byte-compatible with the pre-pipeline
    ``YinYang._check_one``: same counter increments, same record
    fields, same ordering. ``directive`` (triage's per-mutant budget
    tier) and ``session`` (the cell's incremental
    :class:`~repro.solver.session.SolverSession`) are forwarded to each
    solver; ``None`` for both keeps the exact pre-triage call shape, so
    fakes with a one-argument ``check_script`` keep working."""
    schemes = mutant.schemes
    if session is not None:
        # Iteration boundary: outcome entries deduplicate the several
        # solver checks of *this* mutant and must not leak across
        # iterations (see SolverSession.begin_iteration).
        session.begin_iteration()
    for solver in solvers:
        if getattr(solver, "quarantined", False):
            # Circuit breaker tripped: degrade gracefully to the
            # remaining solvers instead of hammering a dead one.
            report.quarantine_skips += 1
            tel.count("quarantine_skips")
            report.quarantined.add(solver.name)
            continue
        began = time.perf_counter()
        try:
            with tel.phase("solve"):
                if session is not None:
                    outcome = solver.check_script(
                        mutant.script, directive=directive, session=session
                    )
                elif directive is None:
                    outcome = solver.check_script(mutant.script)
                else:
                    outcome = solver.check_script(
                        mutant.script, directive=directive
                    )
        except SolverCrash as crash:
            if crash.kind == QUARANTINED_KIND:
                # The breaker tripped between our check above and
                # the call (thread-mode race): a skip, not a crash.
                report.quarantine_skips += 1
                tel.count("quarantine_skips")
                report.quarantined.add(solver.name)
                continue
            report.retries += getattr(crash, "retries", 0)
            contained = crash.kind == HARNESS_ERROR_KIND
            if contained:
                report.contained_errors += 1
            tel.count("bugs.harness" if contained else "bugs.crash")
            report.bugs.append(
                BugRecord(
                    kind=HARNESS if contained else CRASH,
                    solver=solver.name,
                    oracle=mutant.oracle,
                    reported=str(crash),
                    script=mutant.script,
                    seed_indices=mutant.seed_indices,
                    schemes=schemes,
                    logic=mutant.logic,
                    elapsed=time.perf_counter() - began,
                    note=getattr(crash, "fault_id", ""),
                    iteration=iteration,
                    strategy=mutant.strategy,
                )
            )
            continue
        elapsed = time.perf_counter() - began
        tel.count("checks")
        # Guard-level events (retries, timeouts, containment) are
        # counted by the GuardedSolver itself once telemetry is
        # attached — counting them here too would double-count.
        report.retries += outcome.stats.get("guard_retries", 0)
        if outcome.stats.get("guard_timeout"):
            report.timeouts += 1
        with tel.phase("oracle_check"):
            if (
                performance_threshold is not None
                and elapsed > performance_threshold
            ):
                slow_faults = outcome.stats.get("slow_faults", [])
                tel.count("bugs.performance")
                report.bugs.append(
                    BugRecord(
                        kind=PERFORMANCE,
                        solver=solver.name,
                        oracle=mutant.oracle,
                        reported=f"{elapsed:.2f}s",
                        script=mutant.script,
                        seed_indices=mutant.seed_indices,
                        schemes=schemes,
                        logic=mutant.logic,
                        elapsed=elapsed,
                        note=slow_faults[0] if slow_faults else "",
                        iteration=iteration,
                        strategy=mutant.strategy,
                    )
                )
            if outcome.result is SolverResult.UNKNOWN:
                report.unknowns += 1
                tel.count("unknowns")
                kind = unknown_kind(outcome.reason, outcome.stats)
                if kind == UNKNOWN_BUDGET:
                    report.unknowns_budget += 1
                    tel.count("unknowns.budget")
                else:
                    report.unknowns_genuine += 1
                    tel.count("unknowns.genuine")
                # An unknown accompanied by an internal error note is a
                # bug in its own right; a plain unknown is a bug only
                # under the strict (unknown-is-crash) policy.
                if classify_answer(
                    outcome.result,
                    mutant.oracle,
                    outcome.reason,
                    unknown_is_crash,
                ):
                    tel.count("bugs.unknown")
                    report.bugs.append(
                        BugRecord(
                            kind=UNKNOWN_BUG,
                            solver=solver.name,
                            oracle=mutant.oracle,
                            reported="unknown",
                            script=mutant.script,
                            seed_indices=mutant.seed_indices,
                            schemes=schemes,
                            logic=mutant.logic,
                            elapsed=elapsed,
                            note=outcome.reason,
                            iteration=iteration,
                            strategy=mutant.strategy,
                        )
                    )
                continue
            if classify_answer(outcome.result, mutant.oracle) == SOUNDNESS:
                tel.count("bugs.soundness")
                report.bugs.append(
                    BugRecord(
                        kind=SOUNDNESS,
                        solver=solver.name,
                        oracle=mutant.oracle,
                        reported=str(outcome.result),
                        script=mutant.script,
                        seed_indices=mutant.seed_indices,
                        schemes=schemes,
                        logic=mutant.logic,
                        elapsed=elapsed,
                        note=outcome.reason,
                        iteration=iteration,
                        strategy=mutant.strategy,
                    )
                )
