"""Semantic Fusion: the paper's primary contribution.

- :mod:`repro.core.fusion_functions` — the Figure 6 fusion/inversion
  function families (and the extension hook for user-defined ones).
- :mod:`repro.core.substitution` — random-occurrence substitution
  ``phi[e/x]_R``.
- :mod:`repro.core.fusion` — Algorithm 2 (``fuse``), SAT / UNSAT / mixed
  fusion over scripts.
- :mod:`repro.core.concatfuzz` — the RQ4 ablation baseline.
- :mod:`repro.core.yinyang` — Algorithm 1, the YinYang testing loop.
"""

from repro.core.config import FusionConfig
from repro.core.fusion import FusionResult, fuse_scripts
from repro.core.concatfuzz import concat_scripts
from repro.core.yinyang import BugRecord, YinYang, YinYangReport

__all__ = [
    "FusionConfig",
    "FusionResult",
    "fuse_scripts",
    "concat_scripts",
    "YinYang",
    "YinYangReport",
    "BugRecord",
]
