"""Probe-based coverage instrumentation (the reproduction's Gcov stand-in)."""

from repro.coverage.probes import (
    CoverageSession,
    branch_probe,
    coverage_session,
    function_probe,
    line_probe,
    registry_snapshot,
)
from repro.coverage.report import CoverageReport

__all__ = [
    "CoverageSession",
    "coverage_session",
    "line_probe",
    "branch_probe",
    "function_probe",
    "registry_snapshot",
    "CoverageReport",
]
