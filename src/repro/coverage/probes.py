"""Coverage probes: the reproduction's stand-in for Gcov (paper RQ3/RQ4).

The reference solver is instrumented with named probes of three kinds —
``line``, ``function`` and ``branch`` — mirroring Gcov's line/function/
branch coverage metrics. A probe site *registers* itself the first time
its module is imported and *fires* whenever execution passes it while a
:class:`CoverageSession` is active.

Coverage of a run = fired probes / registered probes, per kind. As in
the paper, absolute percentages stay well below 100% because a solver
run in one logic never touches the other theories' probes.

Probes are deliberately cheap (a set lookup and add) and are no-ops
when no session is active.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

_LOCK = threading.Lock()

# All probe ids ever declared, by kind.
_REGISTRY = {"line": set(), "function": set(), "branch": set()}

# Stack of active sessions (innermost last). Each session is a dict
# kind -> set of fired probe ids.
_ACTIVE = []


class CoverageSession:
    """Collects the probes fired while the session is active."""

    def __init__(self, label=""):
        self.label = label
        self.fired = {"line": set(), "function": set(), "branch": set()}

    def merge(self, other):
        """Accumulate another session's fired probes into this one."""
        for kind in self.fired:
            self.fired[kind] |= other.fired[kind]

    def counts(self):
        """Mapping kind -> (fired, registered)."""
        with _LOCK:
            return {
                kind: (len(self.fired[kind]), len(_REGISTRY[kind]))
                for kind in self.fired
            }

    def percentages(self):
        """Mapping kind -> percentage of registered probes fired."""
        out = {}
        for kind, (fired, registered) in self.counts().items():
            out[kind] = 100.0 * fired / registered if registered else 0.0
        return out


@contextmanager
def coverage_session(label=""):
    """Context manager activating a :class:`CoverageSession`."""
    session = CoverageSession(label)
    _ACTIVE.append(session)
    try:
        yield session
    finally:
        _ACTIVE.remove(session)


def activate_session(session):
    """Activate a session without a ``with`` block (long-lived sessions).

    The telemetry layer uses this for its *cumulative* coverage
    session: one session spanning a whole campaign, so probe hits
    accumulate across cells instead of being recomputed from scratch
    per cell. Pair with :func:`deactivate_session`.
    """
    _ACTIVE.append(session)


def deactivate_session(session):
    """Deactivate a session activated by :func:`activate_session`."""
    try:
        _ACTIVE.remove(session)
    except ValueError:
        pass  # already deactivated; idempotent by design


def _declare(kind, probe_id):
    with _LOCK:
        _REGISTRY[kind].add(probe_id)


def _fire(kind, probe_id):
    if not _ACTIVE:
        return
    for session in _ACTIVE:
        session.fired[kind].add(probe_id)


def line_probe(probe_id):
    """Fire (and on first use declare) a line probe."""
    if probe_id not in _REGISTRY["line"]:
        _declare("line", probe_id)
    _fire("line", probe_id)


def branch_probe(probe_id, taken):
    """Fire the ``taken``/``not-taken`` arm of a two-way branch probe."""
    arm = f"{probe_id}:{'T' if taken else 'F'}"
    if arm not in _REGISTRY["branch"]:
        _declare("branch", arm)
        # Declare the sibling arm so untaken branches count as uncovered.
        sibling = f"{probe_id}:{'F' if taken else 'T'}"
        _declare("branch", sibling)
    _fire("branch", arm)
    return taken


def function_probe(probe_id):
    """Fire (and on first use declare) a function-entry probe."""
    if probe_id not in _REGISTRY["function"]:
        _declare("function", probe_id)
    _fire("function", probe_id)


def declare_probes(kind, probe_ids):
    """Pre-declare probe ids so they count as uncovered until fired."""
    for probe_id in probe_ids:
        if kind == "branch":
            _declare("branch", f"{probe_id}:T")
            _declare("branch", f"{probe_id}:F")
        else:
            _declare(kind, probe_id)


def registry_snapshot():
    """Mapping kind -> number of registered probes (for reports)."""
    with _LOCK:
        return {kind: len(ids) for kind, ids in _REGISTRY.items()}


_PROBE_CALL = None


def declare_module_probes(source_file):
    """Pre-declare every probe site that appears in a module's source.

    Instrumented modules call this at import time with ``__file__``; the
    function scans the source text for ``line_probe("...")``,
    ``branch_probe("...")`` and ``function_probe("...")`` call sites and
    registers their ids, so code that never executes still counts as
    uncovered — matching Gcov's denominator semantics.
    """
    global _PROBE_CALL
    import re

    if _PROBE_CALL is None:
        _PROBE_CALL = re.compile(
            r"\b(line_probe|branch_probe|function_probe)\(\s*['\"]([^'\"]+)['\"]"
        )
    with open(source_file, encoding="utf-8") as handle:
        text = handle.read()
    for func, probe_id in _PROBE_CALL.findall(text):
        kind = func.split("_", 1)[0]
        declare_probes(kind, [probe_id])
