"""Coverage report objects used by the RQ3/RQ4 benchmarks."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CoverageReport:
    """Line/function/branch coverage percentages for one measured run."""

    label: str
    line: float
    function: float
    branch: float

    @classmethod
    def from_session(cls, session, label=None):
        pct = session.percentages()
        return cls(
            label=label if label is not None else session.label,
            line=pct["line"],
            function=pct["function"],
            branch=pct["branch"],
        )

    @classmethod
    def from_metrics(cls, snapshot, label):
        """Build a report from a metrics-registry snapshot.

        The registry is the shared source of truth for probe-hit
        counts: the Figure 11 study publishes its sessions into a
        registry and reads the percentages back through here, so its
        numbers can never drift from what ``yinyang stats`` shows for
        the same probes.
        """
        pct = {}
        for kind, (fired, registered) in coverage_counts(snapshot).items():
            pct[kind] = 100.0 * fired / registered if registered else 0.0
        return cls(
            label=label, line=pct["line"], function=pct["function"], branch=pct["branch"]
        )

    def row(self):
        """The (l, f, b) triple formatted like the paper's Figure 11."""
        return (round(self.line, 1), round(self.function, 1), round(self.branch, 1))

    def dominates(self, other):
        """True if every metric is >= the other report's (paper's shading)."""
        return (
            self.line >= other.line
            and self.function >= other.function
            and self.branch >= other.branch
        )

    def __str__(self):
        return (
            f"{self.label}: l={self.line:.1f}% f={self.function:.1f}% "
            f"b={self.branch:.1f}%"
        )


@dataclass
class CoverageComparison:
    """Benchmark-vs-YinYang comparison for one (logic, oracle) cell."""

    logic: str
    oracle: str
    benchmark: CoverageReport
    yinyang: CoverageReport
    concatfuzz: CoverageReport = None

    def improvement(self):
        """Mapping metric -> YinYang minus Benchmark, in percentage points."""
        return {
            "line": self.yinyang.line - self.benchmark.line,
            "function": self.yinyang.function - self.benchmark.function,
            "branch": self.yinyang.branch - self.benchmark.branch,
        }


def coverage_counts(snapshot):
    """Mapping kind -> (fired, registered) from a metrics snapshot.

    The single decoding of the ``coverage.<kind>.fired`` value-sets and
    ``coverage.<kind>.registered`` gauges written by
    :func:`repro.observability.telemetry.publish_coverage_session`.
    Both :meth:`CoverageReport.from_metrics` (Figure 11) and the
    ``yinyang stats`` dashboard consume coverage through this function.
    """
    sets = snapshot.get("sets", {})
    gauges = snapshot.get("gauges", {})
    return {
        kind: (
            len(sets.get(f"coverage.{kind}.fired", ())),
            int(gauges.get(f"coverage.{kind}.registered", 0)),
        )
        for kind in ("line", "function", "branch")
    }


def average_reports(reports, label):
    """Average several reports metric-wise (used by Figure 12)."""
    if not reports:
        return CoverageReport(label, 0.0, 0.0, 0.0)
    n = len(reports)
    return CoverageReport(
        label,
        sum(r.line for r in reports) / n,
        sum(r.function for r in reports) / n,
        sum(r.branch for r in reports) / n,
    )
