"""Value domain of the supported sorts.

Values are plain Python objects: ``bool`` for Bool, ``int`` for Int,
:class:`fractions.Fraction` for Real (exact rational arithmetic — the
solver never touches floats), and ``str`` for String.
"""

from __future__ import annotations

from fractions import Fraction

from repro.smtlib.ast import mk_const
from repro.smtlib.sorts import BOOL, INT, REAL, STRING, bitvec_width, is_bitvec


def default_value(sort):
    """The canonical default value of a sort (used to complete models)."""
    if sort == BOOL:
        return False
    if sort == INT:
        return 0
    if sort == REAL:
        return Fraction(0)
    if sort == STRING:
        return ""
    if is_bitvec(sort):
        return 0
    raise ValueError(f"no default value for sort {sort}")


def value_sort(value):
    """The sort a Python value belongs to."""
    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, Fraction):
        return REAL
    if isinstance(value, str):
        return STRING
    raise TypeError(f"not an SMT value: {value!r}")


def check_value(value, sort):
    """Coerce ``value`` into ``sort``'s domain, raising on mismatch."""
    if sort == BOOL:
        if isinstance(value, bool):
            return value
    elif sort == INT:
        if isinstance(value, bool):
            raise TypeError("bool is not an Int value")
        if isinstance(value, int):
            return value
        if isinstance(value, Fraction) and value.denominator == 1:
            return int(value)
    elif sort == REAL:
        if isinstance(value, bool):
            raise TypeError("bool is not a Real value")
        if isinstance(value, (int, Fraction)):
            return Fraction(value)
    elif sort == STRING:
        if isinstance(value, str):
            return value
    elif is_bitvec(sort):
        if isinstance(value, bool):
            raise TypeError("bool is not a bitvector value")
        if isinstance(value, int) and 0 <= value < (1 << bitvec_width(sort)):
            return value
    raise TypeError(f"value {value!r} does not belong to sort {sort}")


def value_to_const(value):
    """Wrap a Python value in a :class:`~repro.smtlib.ast.Const` term."""
    return mk_const(value, value_sort(value))


def euclidean_div(a, b):
    """SMT-LIB integer division: ``a = b*q + r`` with ``0 <= r < |b|``."""
    if b == 0:
        raise ZeroDivisionError("div by zero")
    # Floor quotient for positive divisors, ceiling for negative ones,
    # keeps the remainder in [0, |b|).
    return a // b if b > 0 else -(a // -b)


def euclidean_mod(a, b):
    """SMT-LIB integer modulo: the ``r`` in ``a = b*q + r``, ``0 <= r < |b|``."""
    if b == 0:
        raise ZeroDivisionError("mod by zero")
    return a - b * euclidean_div(a, b)
