"""Models: assignments of values to free variables.

SMT-LIB leaves real division, integer division, and modulo
*uninterpreted* at a zero divisor: a model is free to choose any value,
as long as the choice is functionally consistent. The paper's Figure 13c
bug hinges on exactly this point, so models here carry an explicit
division-by-zero interpretation: a table from (operation, numerator
value) to the chosen result, with a configurable default.
"""

from __future__ import annotations

from fractions import Fraction

from repro.semantics.values import check_value, default_value, value_sort
from repro.smtlib.sorts import INT, REAL


class Model:
    """A mapping from variable names to values, plus division-at-zero choices.

    Use item access for assignments::

        m = Model({"x": 3, "y": Fraction(1, 2)})
        m["x"]          # -> 3
    """

    def __init__(self, assignment=None, div0=None):
        self._assignment = dict(assignment or {})
        # (op, numerator_value) -> chosen result, op in {"/", "div", "mod"}
        self._div0 = dict(div0 or {})

    # -- assignment access ------------------------------------------------

    def __getitem__(self, name):
        return self._assignment[name]

    def __setitem__(self, name, value):
        self._assignment[name] = value

    def __contains__(self, name):
        return name in self._assignment

    def get(self, name, default=None):
        return self._assignment.get(name, default)

    def names(self):
        return list(self._assignment)

    def items(self):
        return self._assignment.items()

    def copy(self):
        return Model(self._assignment, self._div0)

    def complete(self, variables):
        """Copy of this model with defaults for any missing variables."""
        out = self.copy()
        for var in variables:
            if var.name not in out:
                out[var.name] = default_value(var.sort)
        return out

    # -- division at zero ---------------------------------------------------

    def div_at_zero(self, op, numerator):
        """The model's value for ``op(numerator, 0)``.

        Consistent across occurrences: the first lookup fixes the value.
        The default interpretation returns 0 (of the proper sort), a
        choice real solvers commonly make.
        """
        key = (op, numerator)
        if key not in self._div0:
            self._div0[key] = Fraction(0) if op == "/" else 0
        return self._div0[key]

    def set_div_at_zero(self, op, numerator, value):
        """Pin the interpretation of ``op(numerator, 0)``."""
        if op == "/":
            value = check_value(value, REAL)
        else:
            value = check_value(value, INT)
        self._div0[(op, numerator)] = value

    # -- niceties -----------------------------------------------------------

    def merged_with(self, other):
        """Union of two models over disjoint variable sets.

        Used by the SAT-fusion soundness proof: ``M = M1 ∪ M2 ∪ {z ...}``.
        Raises ``ValueError`` on conflicting assignments.
        """
        out = self.copy()
        for name, value in other.items():
            if name in out and out[name] != value:
                raise ValueError(f"conflicting assignment for {name!r}")
            out[name] = value
        for key, value in other._div0.items():
            if key in out._div0 and out._div0[key] != value:
                raise ValueError(f"conflicting div-at-zero choice for {key!r}")
            out._div0[key] = value
        return out

    def __repr__(self):
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self._assignment.items()))
        return f"Model({inner})"

    def __eq__(self, other):
        if not isinstance(other, Model):
            return NotImplemented
        return self._assignment == other._assignment and self._div0 == other._div0

    def to_smtlib(self):
        """Render the model as SMT-LIB ``define-fun`` lines (like get-model)."""
        from repro.smtlib.ast import mk_const
        from repro.smtlib.printer import print_term

        lines = []
        for name, value in sorted(self._assignment.items()):
            sort = value_sort(value)
            body = print_term(mk_const(value, sort))
            lines.append(f"(define-fun {name} () {sort} {body})")
        return "\n".join(lines)
