"""Model-level semantics: values, models, regex engine, term evaluation."""

from repro.semantics.model import Model
from repro.semantics.evaluator import evaluate, evaluate_script

__all__ = ["Model", "evaluate", "evaluate_script"]
