"""Evaluation of SMT-LIB terms under a model.

Implements SMT-LIB 2.6 semantics for every supported operator,
including the string-edge cases the paper's bugs revolve around
(``str.to.int`` of the empty string is -1, ``str.replace`` with an
empty pattern prepends, ``str.substr`` out of range is the empty
string, Euclidean integer division, and uninterpreted-but-consistent
division at zero).

Quantifiers are handled best-effort by bounded enumeration: the
evaluator only returns a definite verdict when enumeration suffices,
and raises :class:`~repro.errors.EvaluationError` otherwise.
"""

from __future__ import annotations

from fractions import Fraction

from repro.coverage.probes import declare_probes, line_probe
from repro.errors import EvaluationError
from repro.semantics import regex as rx
from repro.semantics.values import euclidean_div, euclidean_mod
from repro.smtlib.ast import App, Const, Quantifier, Var
from repro.smtlib.sorts import BOOL, INT, REAL, STRING

# Bounded quantifier enumeration domain (integers and a few rationals).
_QUANT_INT_DOMAIN = tuple(range(-6, 7))
_QUANT_REAL_DOMAIN = tuple(
    Fraction(n, d) for d in (1, 2, 3) for n in range(-6, 7)
)
_QUANT_STRING_DOMAIN = ("", "a", "b", "aa", "ab", "A", "0", "1", "=", "C")


def evaluate(term, model):
    """Evaluate ``term`` under ``model``; returns a Python value.

    Raises :class:`EvaluationError` when a free variable has no
    assignment or a quantifier cannot be decided by bounded enumeration.
    """
    return _eval(term, model, {})


def evaluate_script(script, model):
    """Evaluate the conjunction of a script's assertions under ``model``."""
    complete = model.complete(script.free_variables())
    return all(evaluate(t, complete) for t in script.asserts)


def _eval(term, model, bound):
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        if term.name in bound:
            return bound[term.name]
        if term.name not in model:
            raise EvaluationError(f"no assignment for variable {term.name!r}")
        return model[term.name]
    if isinstance(term, Quantifier):
        return _eval_quantifier(term, model, bound)
    if isinstance(term, App):
        return _eval_app(term, model, bound)
    raise TypeError(f"not a term: {term!r}")


def _eval_quantifier(term, model, bound):
    # Guard-bounded *universals* are decided exactly: outside the guard
    # range the implication body is vacuously true, so checking the
    # finite range suffices. (The same is NOT true for existentials —
    # any out-of-range value witnesses the implication vacuously — so
    # those take the generic enumeration below.)
    from repro.smtlib.quantbounds import guarded_integer_bounds

    if term.kind == "forall":
        exact_bounds = guarded_integer_bounds(term)
        if exact_bounds is not None:
            names = list(exact_bounds)

            def exact(i, env):
                if i == len(names):
                    return bool(_eval(term.body, model, env))
                lo, hi = exact_bounds[names[i]]
                for value in range(lo, hi + 1):
                    env2 = dict(env)
                    env2[names[i]] = value
                    if not exact(i + 1, env2):
                        return False
                return True

            return exact(0, dict(bound))

    # Enumeration domains are adaptive: constants appearing in the body
    # (and their neighbors, for Int) join the base domain, so witnesses
    # and counterexamples built from the formula's own constants are
    # always found.
    harvested = {INT: [], REAL: [], STRING: []}
    for node in term.body.walk():
        if isinstance(node, Const) and node.sort in harvested:
            values = harvested[node.sort]
            if node.value not in values and len(values) < 12:
                values.append(node.value)
                if node.sort == INT:
                    values.extend((node.value - 1, node.value + 1))

    domains = []
    for _, sort in term.bindings:
        if sort == INT:
            domains.append(_QUANT_INT_DOMAIN + tuple(harvested[INT]))
        elif sort == REAL:
            domains.append(
                _QUANT_REAL_DOMAIN + tuple(Fraction(v) for v in harvested[REAL])
            )
        elif sort == BOOL:
            domains.append((False, True))
        elif sort == STRING:
            domains.append(_QUANT_STRING_DOMAIN + tuple(harvested[STRING]))
        else:
            raise EvaluationError(f"cannot enumerate sort {sort}")

    names = [name for name, _ in term.bindings]
    want_witness = term.kind == "exists"

    def search(i, env):
        if i == len(names):
            return _eval(term.body, model, env)
        for value in domains[i]:
            env2 = dict(env)
            env2[names[i]] = value
            result = search(i + 1, env2)
            if want_witness and result:
                return True
            if not want_witness and not result:
                return False
        return not want_witness

    found = search(0, bound)
    if want_witness and found:
        return True
    if not want_witness and not found:
        return False
    # Enumeration exhausted without a decisive answer: the bounded
    # domain cannot prove a universal or refute an existential.
    raise EvaluationError(
        f"cannot decide {term.kind} by bounded enumeration"
    )


def _eval_app(term, model, bound):
    op = term.op
    line_probe(f"eval.{op}")

    # Lazy/short-circuit operators first.
    if op == "and":
        return all(_eval(a, model, bound) for a in term.args)
    if op == "or":
        return any(_eval(a, model, bound) for a in term.args)
    if op == "ite":
        if _eval(term.args[0], model, bound):
            return _eval(term.args[1], model, bound)
        return _eval(term.args[2], model, bound)
    if op == "=>":
        *hyps, conclusion = term.args
        if all(_eval(h, model, bound) for h in hyps):
            return bool(_eval(conclusion, model, bound))
        return True
    if op == "str.in.re":
        text = _eval(term.args[0], model, bound)
        regex = rx.regex_from_term(
            term.args[1], lambda t: _eval(t, model, bound)
        )
        return rx.matches(regex, text)

    args = [_eval(a, model, bound) for a in term.args]

    # --- core -----------------------------------------------------------
    if op == "not":
        return not args[0]
    if op == "xor":
        result = False
        for a in args:
            result ^= bool(a)
        return result
    if op == "=":
        return all(a == args[0] for a in args[1:])
    if op == "distinct":
        return all(
            args[i] != args[j]
            for i in range(len(args))
            for j in range(i + 1, len(args))
        )

    # --- arithmetic --------------------------------------------------------
    if op == "+":
        return _resort(sum(args), term.sort)
    if op == "-":
        if len(args) == 1:
            return _resort(-args[0], term.sort)
        return _resort(args[0] - sum(args[1:]), term.sort)
    if op == "*":
        result = args[0]
        for a in args[1:]:
            result *= a
        return _resort(result, term.sort)
    if op == "/":
        result = Fraction(args[0])
        for denominator in args[1:]:
            if denominator == 0:
                result = model.div_at_zero("/", result)
            else:
                result = result / denominator
        return Fraction(result)
    if op == "div":
        if args[1] == 0:
            return model.div_at_zero("div", args[0])
        return euclidean_div(args[0], args[1])
    if op == "mod":
        if args[1] == 0:
            return model.div_at_zero("mod", args[0])
        return euclidean_mod(args[0], args[1])
    if op == "abs":
        return abs(args[0])
    if op == "<":
        return all(a < b for a, b in zip(args, args[1:]))
    if op == "<=":
        return all(a <= b for a, b in zip(args, args[1:]))
    if op == ">":
        return all(a > b for a, b in zip(args, args[1:]))
    if op == ">=":
        return all(a >= b for a, b in zip(args, args[1:]))
    if op == "to_real":
        return Fraction(args[0])
    if op == "to_int":
        # SMT-LIB to_int is the floor.
        return args[0].numerator // args[0].denominator
    if op == "is_int":
        return Fraction(args[0]).denominator == 1

    # --- strings -----------------------------------------------------------
    if op == "str.++":
        return "".join(args)
    if op == "str.len":
        return len(args[0])
    if op == "str.at":
        s, i = args
        if 0 <= i < len(s):
            return s[i]
        return ""
    if op == "str.substr":
        s, offset, count = args
        if offset < 0 or offset >= len(s) or count <= 0:
            return ""
        return s[offset : offset + count]
    if op == "str.indexof":
        s, needle, start = args
        if start < 0 or start > len(s):
            return -1
        found = s.find(needle, start)
        return found
    if op == "str.replace":
        s, pattern, replacement = args
        if pattern == "":
            return replacement + s
        index = s.find(pattern)
        if index < 0:
            return s
        return s[:index] + replacement + s[index + len(pattern) :]
    if op == "str.prefixof":
        return args[1].startswith(args[0])
    if op == "str.suffixof":
        return args[1].endswith(args[0])
    if op == "str.contains":
        return args[1] in args[0]
    if op == "str.to.int":
        s = args[0]
        if s and all(c.isdigit() and c.isascii() for c in s):
            return int(s)
        return -1
    if op == "str.from.int":
        n = args[0]
        return str(n) if n >= 0 else ""

    raise EvaluationError(f"cannot evaluate operator {op!r}")


def _resort(value, sort):
    if sort == REAL:
        return Fraction(value)
    return value


# Pre-declare one probe per interpreted operator so coverage reflects
# which theory operations a workload actually exercises (like Gcov over
# a real solver's per-operator evaluation code).
from repro.smtlib.typecheck import ALL_OPS as _ALL_OPS

declare_probes("line", [f"eval.{op}" for op in sorted(_ALL_OPS)])
