"""Evaluation of SMT-LIB terms under a model.

Implements SMT-LIB 2.6 semantics for every supported operator,
including the string-edge cases the paper's bugs revolve around
(``str.to.int`` of the empty string is -1, ``str.replace`` with an
empty pattern prepends, ``str.substr`` out of range is the empty
string, Euclidean integer division, and uninterpreted-but-consistent
division at zero).

Quantifiers are handled best-effort by bounded enumeration: the
evaluator only returns a definite verdict when enumeration suffices,
and raises :class:`~repro.errors.EvaluationError` otherwise.
"""

from __future__ import annotations

from fractions import Fraction

from repro.coverage.probes import declare_probes, line_probe
from repro.errors import EvaluationError
from repro.semantics import regex as rx
from repro.semantics.values import euclidean_div, euclidean_mod
from repro.smtlib import theory as _theory
from repro.smtlib.ast import App, Const, Quantifier, Var, free_names
from repro.smtlib.sorts import BOOL, INT, REAL, STRING

# Bounded quantifier enumeration domain (integers and a few rationals).
_QUANT_INT_DOMAIN = tuple(range(-6, 7))
_QUANT_REAL_DOMAIN = tuple(
    Fraction(n, d) for d in (1, 2, 3) for n in range(-6, 7)
)
_QUANT_STRING_DOMAIN = ("", "a", "b", "aa", "ab", "A", "0", "1", "=", "C")


def evaluate(term, model):
    """Evaluate ``term`` under ``model``; returns a Python value.

    Raises :class:`EvaluationError` when a free variable has no
    assignment or a quantifier cannot be decided by bounded enumeration.
    """
    return _eval(term, model, {}, {})


def evaluate_script(script, model):
    """Evaluate the conjunction of a script's assertions under ``model``.

    One memo table is shared across the assertions, so a subterm the
    fused script asserts (or embeds) repeatedly is evaluated once.
    """
    complete = model.complete(script.free_variables())
    memo = {}
    return all(_eval(t, complete, {}, memo) for t in script.asserts)


_UNSET = object()

# Operators whose arguments must not be evaluated eagerly, as declared
# by the registered theories (core's connectives, strings' str.in.re).
_LAZY_OPS = _theory.lazy_ops()


def _memoizable(node, bound):
    # A memo entry is only valid when the node's value cannot depend on
    # the enclosing binder environment. Interning makes the *same* node
    # object reachable under different binders, so this check guards the
    # lookup as well as the store.
    return not bound or free_names(node).isdisjoint(bound)


def _eval(term, model, bound, memo):
    """Iterative evaluation over the shared term DAG.

    An explicit frame stack replaces recursion (fused formulas nest far
    past Python's recursion limit), and an identity-keyed memo table
    evaluates each shared ground subterm once per (model, binder
    environment) — see :func:`_memoizable`. Short-circuit semantics of
    ``and``/``or``/``ite``/``=>`` are preserved: unreached arguments are
    never evaluated.
    """
    stack = [[term, None, False]]  # [node, arg values, memoizable?]
    retval = _UNSET
    while stack:
        frame = stack[-1]
        node = frame[0]
        cls = node.__class__
        if cls is not App:
            if cls is Const:
                retval = node.value
            elif cls is Var:
                name = node.name
                if name in bound:
                    retval = bound[name]
                elif name in model:
                    retval = model[name]
                else:
                    raise EvaluationError(
                        f"no assignment for variable {name!r}"
                    )
            elif cls is Quantifier:
                nid = id(node)
                ok = _memoizable(node, bound)
                if ok and nid in memo:
                    retval = memo[nid]
                else:
                    retval = _eval_quantifier(node, model, bound, memo)
                    if ok:
                        memo[nid] = retval
            else:
                raise TypeError(f"not a term: {node!r}")
            stack.pop()
            continue

        vals = frame[1]
        if vals is None:
            nid = id(node)
            ok = _memoizable(node, bound)
            if ok and nid in memo:
                retval = memo[nid]
                stack.pop()
                continue
            line_probe(f"eval.{node.op}")
            vals = frame[1] = []
            frame[2] = ok
        if retval is not _UNSET:
            vals.append(retval)
            retval = _UNSET

        op = node.op
        if op in _LAZY_OPS:
            result = _step_lazy(op, node, vals, model, bound, memo, stack)
            if result is _UNSET:
                continue  # a child frame was pushed
        else:
            if len(vals) < len(node.args):
                stack.append([node.args[len(vals)], None, False])
                continue
            result = _apply_op(op, vals, node, model)
        if frame[2]:
            memo[id(node)] = result
        retval = result
        stack.pop()
    return retval


def _step_lazy(op, node, vals, model, bound, memo, stack):
    """Advance a short-circuit operator by one step.

    Returns the operator's final value, or ``_UNSET`` after pushing the
    next argument frame.
    """
    n = len(node.args)
    done = len(vals)
    if op == "and":
        if done and not vals[-1]:
            return False
        if done == n:
            return True
    elif op == "or":
        if done and vals[-1]:
            return True
        if done == n:
            return False
    elif op == "ite":
        if done == 2:
            return vals[1]
        if done == 1:
            branch = node.args[1] if vals[0] else node.args[2]
            stack.append([branch, None, False])
            return _UNSET
    elif op == "=>":
        if done == n:
            return bool(vals[-1])
        if done and done < n and not vals[-1]:
            return True  # a falsified hypothesis decides the implication
    else:  # str.in.re
        if done == 1:
            regex = rx.regex_from_term(
                node.args[1], lambda t: _eval(t, model, bound, memo)
            )
            return rx.matches(regex, vals[0])
    stack.append([node.args[done], None, False])
    return _UNSET


def _eval_quantifier(term, model, bound, memo):
    # Guard-bounded *universals* are decided exactly: outside the guard
    # range the implication body is vacuously true, so checking the
    # finite range suffices. (The same is NOT true for existentials —
    # any out-of-range value witnesses the implication vacuously — so
    # those take the generic enumeration below.)
    from repro.smtlib.quantbounds import guarded_integer_bounds

    if term.kind == "forall":
        exact_bounds = guarded_integer_bounds(term)
        if exact_bounds is not None:
            names = list(exact_bounds)

            def exact(i, env):
                if i == len(names):
                    return bool(_eval(term.body, model, env, memo))
                lo, hi = exact_bounds[names[i]]
                for value in range(lo, hi + 1):
                    env2 = dict(env)
                    env2[names[i]] = value
                    if not exact(i + 1, env2):
                        return False
                return True

            return exact(0, dict(bound))

    # Enumeration domains are adaptive: constants appearing in the body
    # (and their neighbors, for Int) join the base domain, so witnesses
    # and counterexamples built from the formula's own constants are
    # always found.
    harvested = {INT: [], REAL: [], STRING: []}
    for node in term.body.walk():
        if isinstance(node, Const) and node.sort in harvested:
            values = harvested[node.sort]
            if node.value not in values and len(values) < 12:
                values.append(node.value)
                if node.sort == INT:
                    values.extend((node.value - 1, node.value + 1))

    domains = []
    for _, sort in term.bindings:
        if sort == INT:
            domains.append(_QUANT_INT_DOMAIN + tuple(harvested[INT]))
        elif sort == REAL:
            domains.append(
                _QUANT_REAL_DOMAIN + tuple(Fraction(v) for v in harvested[REAL])
            )
        elif sort == BOOL:
            domains.append((False, True))
        elif sort == STRING:
            domains.append(_QUANT_STRING_DOMAIN + tuple(harvested[STRING]))
        else:
            raise EvaluationError(f"cannot enumerate sort {sort}")

    names = [name for name, _ in term.bindings]
    want_witness = term.kind == "exists"

    def search(i, env):
        if i == len(names):
            return _eval(term.body, model, env, memo)
        for value in domains[i]:
            env2 = dict(env)
            env2[names[i]] = value
            result = search(i + 1, env2)
            if want_witness and result:
                return True
            if not want_witness and not result:
                return False
        return not want_witness

    found = search(0, bound)
    if want_witness and found:
        return True
    if not want_witness and not found:
        return False
    # Enumeration exhausted without a decisive answer: the bounded
    # domain cannot prove a universal or refute an existential.
    raise EvaluationError(
        f"cannot decide {term.kind} by bounded enumeration"
    )


def _apply_op(op, args, term, model):
    """Apply an eager operator to its already-evaluated arguments."""
    # --- core -----------------------------------------------------------
    if op == "not":
        return not args[0]
    if op == "xor":
        result = False
        for a in args:
            result ^= bool(a)
        return result
    if op == "=":
        return all(a == args[0] for a in args[1:])
    if op == "distinct":
        return all(
            args[i] != args[j]
            for i in range(len(args))
            for j in range(i + 1, len(args))
        )

    # --- arithmetic --------------------------------------------------------
    if op == "+":
        return _resort(sum(args), term.sort)
    if op == "-":
        if len(args) == 1:
            return _resort(-args[0], term.sort)
        return _resort(args[0] - sum(args[1:]), term.sort)
    if op == "*":
        result = args[0]
        for a in args[1:]:
            result *= a
        return _resort(result, term.sort)
    if op == "/":
        result = Fraction(args[0])
        for denominator in args[1:]:
            if denominator == 0:
                result = model.div_at_zero("/", result)
            else:
                result = result / denominator
        return Fraction(result)
    if op == "div":
        if args[1] == 0:
            return model.div_at_zero("div", args[0])
        return euclidean_div(args[0], args[1])
    if op == "mod":
        if args[1] == 0:
            return model.div_at_zero("mod", args[0])
        return euclidean_mod(args[0], args[1])
    if op == "abs":
        return abs(args[0])
    if op == "<":
        return all(a < b for a, b in zip(args, args[1:]))
    if op == "<=":
        return all(a <= b for a, b in zip(args, args[1:]))
    if op == ">":
        return all(a > b for a, b in zip(args, args[1:]))
    if op == ">=":
        return all(a >= b for a, b in zip(args, args[1:]))
    if op == "to_real":
        return Fraction(args[0])
    if op == "to_int":
        # SMT-LIB to_int is the floor.
        return args[0].numerator // args[0].denominator
    if op == "is_int":
        return Fraction(args[0]).denominator == 1

    # --- strings -----------------------------------------------------------
    if op == "str.++":
        return "".join(args)
    if op == "str.len":
        return len(args[0])
    if op == "str.at":
        s, i = args
        if 0 <= i < len(s):
            return s[i]
        return ""
    if op == "str.substr":
        s, offset, count = args
        if offset < 0 or offset >= len(s) or count <= 0:
            return ""
        return s[offset : offset + count]
    if op == "str.indexof":
        s, needle, start = args
        if start < 0 or start > len(s):
            return -1
        found = s.find(needle, start)
        return found
    if op == "str.replace":
        s, pattern, replacement = args
        if pattern == "":
            return replacement + s
        index = s.find(pattern)
        if index < 0:
            return s
        return s[:index] + replacement + s[index + len(pattern) :]
    if op == "str.prefixof":
        return args[1].startswith(args[0])
    if op == "str.suffixof":
        return args[1].endswith(args[0])
    if op == "str.contains":
        return args[1] in args[0]
    if op == "str.to.int":
        s = args[0]
        if s and all(c.isdigit() and c.isascii() for c in s):
            return int(s)
        return -1
    if op == "str.from.int":
        n = args[0]
        return str(n) if n >= 0 else ""

    # --- registered theories (bitvectors) ---------------------------------
    hook = _theory.evaluator_for(op)
    if hook is not None:
        return hook(op, args, term, model)

    raise EvaluationError(f"cannot evaluate operator {op!r}")


def _resort(value, sort):
    if sort == REAL:
        return Fraction(value)
    return value


# Pre-declare one probe per interpreted operator so coverage reflects
# which theory operations a workload actually exercises (like Gcov over
# a real solver's per-operator evaluation code).
from repro.smtlib.typecheck import ALL_OPS as _ALL_OPS

declare_probes("line", [f"eval.{op}" for op in sorted(_ALL_OPS)])
