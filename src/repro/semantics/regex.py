"""Regular-expression engine based on Brzozowski derivatives.

Supports the SMT-LIB regular-expression operators used by the paper's
string logics: ``str.to.re``, ``re.none``, ``re.all``, ``re.allchar``,
``re.++``, ``re.union``, ``re.inter``, ``re.*``, ``re.+``, ``re.opt``,
``re.range`` and ``re.comp``.

Smart constructors keep regexes in a canonical-enough form that the set
of derivatives stays finite, so language emptiness and bounded member
enumeration terminate. The alphabet is printable ASCII.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

ALPHABET = tuple(chr(c) for c in range(32, 127))


class Regex:
    """Base class for canonical regex nodes (immutable, hashable)."""

    __slots__ = ()


@dataclass(frozen=True)
class RNone(Regex):
    """The empty language."""


@dataclass(frozen=True)
class REpsilon(Regex):
    """The language containing only the empty string."""


@dataclass(frozen=True)
class RChar(Regex):
    """A single-character class given by an inclusive range."""

    lo: str
    hi: str

    def admits(self, ch):
        return self.lo <= ch <= self.hi


@dataclass(frozen=True)
class RConcat(Regex):
    parts: tuple


@dataclass(frozen=True)
class RUnion(Regex):
    parts: tuple  # sorted, deduplicated


@dataclass(frozen=True)
class RInter(Regex):
    parts: tuple  # sorted, deduplicated


@dataclass(frozen=True)
class RStar(Regex):
    inner: Regex


@dataclass(frozen=True)
class RComp(Regex):
    inner: Regex


NONE = RNone()
EPSILON = REpsilon()
ALLCHAR = RChar(ALPHABET[0], ALPHABET[-1])
ALL = RStar(ALLCHAR)


def _key(r):
    return repr(r)


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def literal(text):
    """The singleton language ``{text}``."""
    if not text:
        return EPSILON
    return concat(*[RChar(ch, ch) for ch in text])


def char_range(lo, hi):
    """``re.range``: all single characters in ``[lo, hi]``.

    Per SMT-LIB, if either bound is not a single character or the range
    is empty, the language is empty.
    """
    if len(lo) != 1 or len(hi) != 1 or lo > hi:
        return NONE
    return RChar(lo, hi)


def concat(*parts):
    flat = []
    for part in parts:
        if isinstance(part, RConcat):
            flat.extend(part.parts)
        elif isinstance(part, RNone):
            return NONE
        elif isinstance(part, REpsilon):
            continue
        else:
            flat.append(part)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return RConcat(tuple(flat))


def union(*parts):
    flat = {}
    for part in parts:
        if isinstance(part, RUnion):
            for p in part.parts:
                flat[_key(p)] = p
        elif isinstance(part, RNone):
            continue
        elif part == ALL or (isinstance(part, RComp) and isinstance(part.inner, RNone)):
            return ALL
        else:
            flat[_key(part)] = part
    if not flat:
        return NONE
    items = tuple(flat[k] for k in sorted(flat))
    if len(items) == 1:
        return items[0]
    return RUnion(items)


def inter(*parts):
    flat = {}
    for part in parts:
        if isinstance(part, RInter):
            for p in part.parts:
                flat[_key(p)] = p
        elif isinstance(part, RNone):
            return NONE
        elif part == ALL:
            continue
        else:
            flat[_key(part)] = part
    if not flat:
        return ALL
    items = tuple(flat[k] for k in sorted(flat))
    if len(items) == 1:
        return items[0]
    return RInter(items)


def star(inner):
    if isinstance(inner, (RNone, REpsilon)):
        return EPSILON
    if isinstance(inner, RStar):
        return inner
    return RStar(inner)


def plus(inner):
    return concat(inner, star(inner))


def opt(inner):
    return union(EPSILON, inner)


def complement(inner):
    if isinstance(inner, RComp):
        return inner.inner
    if isinstance(inner, RNone):
        return ALL
    return RComp(inner)


# ---------------------------------------------------------------------------
# Derivatives
# ---------------------------------------------------------------------------


@lru_cache(maxsize=65536)
def nullable(r):
    """True iff the language of ``r`` contains the empty string."""
    if isinstance(r, REpsilon):
        return True
    if isinstance(r, (RNone, RChar)):
        return False
    if isinstance(r, RStar):
        return True
    if isinstance(r, RConcat):
        return all(nullable(p) for p in r.parts)
    if isinstance(r, RUnion):
        return any(nullable(p) for p in r.parts)
    if isinstance(r, RInter):
        return all(nullable(p) for p in r.parts)
    if isinstance(r, RComp):
        return not nullable(r.inner)
    raise TypeError(f"not a regex: {r!r}")


@lru_cache(maxsize=65536)
def derivative(r, ch):
    """The Brzozowski derivative of ``r`` with respect to character ``ch``."""
    if isinstance(r, (RNone, REpsilon)):
        return NONE
    if isinstance(r, RChar):
        return EPSILON if r.admits(ch) else NONE
    if isinstance(r, RConcat):
        head, tail = r.parts[0], concat(*r.parts[1:])
        first = concat(derivative(head, ch), tail)
        if nullable(head):
            return union(first, derivative(tail, ch))
        return first
    if isinstance(r, RUnion):
        return union(*(derivative(p, ch) for p in r.parts))
    if isinstance(r, RInter):
        return inter(*(derivative(p, ch) for p in r.parts))
    if isinstance(r, RStar):
        return concat(derivative(r.inner, ch), r)
    if isinstance(r, RComp):
        return complement(derivative(r.inner, ch))
    raise TypeError(f"not a regex: {r!r}")


def matches(r, text):
    """True iff ``text`` belongs to the language of ``r``."""
    for ch in text:
        r = derivative(r, ch)
        if isinstance(r, RNone):
            return False
    return nullable(r)


# ---------------------------------------------------------------------------
# Language analysis
# ---------------------------------------------------------------------------


def _relevant_chars(r):
    """Representative characters that can distinguish derivative behaviour.

    Collects the boundaries of every character class plus one character
    from each gap between classes, which partitions the alphabet into
    equivalence classes with identical derivatives.
    """
    boundaries = set()
    stack = [r]
    while stack:
        node = stack.pop()
        if isinstance(node, RChar):
            boundaries.add(node.lo)
            boundaries.add(node.hi)
            # A character just outside the class, if any, to represent
            # the "rejected" partition.
            if node.lo > ALPHABET[0]:
                boundaries.add(chr(ord(node.lo) - 1))
            if node.hi < ALPHABET[-1]:
                boundaries.add(chr(ord(node.hi) + 1))
        elif isinstance(node, (RConcat, RUnion, RInter)):
            stack.extend(node.parts)
        elif isinstance(node, (RStar, RComp)):
            stack.append(node.inner)
    boundaries.add(ALPHABET[0])
    return sorted(boundaries)


def is_empty(r, max_states=4000):
    """True iff the language of ``r`` is empty.

    Explores the derivative graph; exact for the regexes the canonical
    constructors produce. Raises ``RuntimeError`` if the state bound is
    exceeded (defensive; not expected in practice).
    """
    chars = _relevant_chars(r)
    seen = set()
    stack = [r]
    while stack:
        node = stack.pop()
        if isinstance(node, RNone):
            continue
        key = _key(node)
        if key in seen:
            continue
        seen.add(key)
        if len(seen) > max_states:
            raise RuntimeError("regex derivative state bound exceeded")
        if nullable(node):
            return False
        for ch in chars:
            stack.append(derivative(node, ch))
    return True


def shortest_member(r, max_length=64):
    """A shortest string in the language of ``r``, or ``None`` if empty.

    Breadth-first search over derivative states up to ``max_length``.
    """
    from collections import deque

    chars = _relevant_chars(r)
    if nullable(r):
        return ""
    queue = deque([(r, "")])
    seen = {_key(r)}
    while queue:
        node, prefix = queue.popleft()
        if len(prefix) >= max_length:
            continue
        for ch in chars:
            nxt = derivative(node, ch)
            if isinstance(nxt, RNone):
                continue
            if nullable(nxt):
                return prefix + ch
            key = _key(nxt)
            if key not in seen:
                seen.add(key)
                queue.append((nxt, prefix + ch))
    return None


def enumerate_members(r, limit=10, max_length=16):
    """Enumerate up to ``limit`` members of the language, shortest first."""
    from collections import deque

    chars = _relevant_chars(r)
    out = []
    queue = deque([(r, "")])
    visited_words = 0
    while queue and len(out) < limit:
        node, prefix = queue.popleft()
        if nullable(node):
            out.append(prefix)
            if len(out) >= limit:
                break
        if len(prefix) >= max_length:
            continue
        for ch in chars:
            nxt = derivative(node, ch)
            if isinstance(nxt, RNone):
                continue
            visited_words += 1
            if visited_words > 100000:
                return out
            queue.append((nxt, prefix + ch))
    return out


# ---------------------------------------------------------------------------
# Conversion from SMT-LIB terms
# ---------------------------------------------------------------------------


def regex_from_term(term, eval_string):
    """Build a :class:`Regex` from a RegLan-sorted term.

    ``eval_string`` maps String-sorted argument terms (e.g. the argument
    of ``str.to.re``) to their string values; pass an evaluator closure.
    """
    from repro.smtlib.ast import App

    if not isinstance(term, App):
        raise TypeError(f"not a regex term: {term!r}")
    op = term.op
    if op == "str.to.re":
        return literal(eval_string(term.args[0]))
    if op == "re.none":
        return NONE
    if op == "re.all":
        return ALL
    if op == "re.allchar":
        return ALLCHAR
    if op == "re.++":
        return concat(*(regex_from_term(a, eval_string) for a in term.args))
    if op == "re.union":
        return union(*(regex_from_term(a, eval_string) for a in term.args))
    if op == "re.inter":
        return inter(*(regex_from_term(a, eval_string) for a in term.args))
    if op == "re.*":
        return star(regex_from_term(term.args[0], eval_string))
    if op == "re.+":
        return plus(regex_from_term(term.args[0], eval_string))
    if op == "re.opt":
        return opt(regex_from_term(term.args[0], eval_string))
    if op == "re.comp":
        return complement(regex_from_term(term.args[0], eval_string))
    if op == "re.range":
        return char_range(eval_string(term.args[0]), eval_string(term.args[1]))
    raise TypeError(f"unknown regex operator: {op!r}")
