"""The campaign-plan owner: cells → shard leases → a supervised fleet.

Extracted from the runner's supervised path so the same cell loop
drives *any* lease backend — the in-process
:class:`~repro.core.parallel.SupervisedPoolBackend` or a socket
:class:`~repro.distributed.endpoint.TcpFleet`. The coordinator owns
exactly three responsibilities:

1. **planning** — each remaining (solver, family, oracle) cell becomes
   ``workers`` strided shard leases (minus resumed partials), with
   crash-safe progress paths next to the journal;
2. **supervision** — one :class:`~repro.robustness.supervisor.Supervisor`
   spans the whole campaign (restart budget and counters are
   campaign-global) and drives every lease to completion through
   retries, bisection and poison quarantine, whatever the transport;
3. **merging** — shard payloads come home in *completion* order, from
   any worker, possibly as several bisected fragments per shard; the
   stable-global-id merge reassembles them into the canonical cell
   report, so the journal's bytes are a pure function of the plan, not
   of scheduling.

For remote fleets the coordinator also writes the **fleet sidecar**
(``<journal>.shard-fleet.jsonl``): tcp workers never see the journal's
host path, so completed shards are recorded coordinator-side in the
same sidecar format pool workers write — which is what lets a resumed
campaign skip fleet-completed shards exactly as it skips pool ones.
"""

from __future__ import annotations

import os

from repro.core.yinyang import merge_shard_reports, shard_indices
from repro.robustness.supervisor import Supervisor, SupervisorPolicy


class Coordinator:
    """Runs campaign cells as supervised shard leases over a backend.

    ``backend`` is anything the Supervisor can drive; the coordinator
    does not know (or care) whether leases execute in pool children or
    across sockets. ``poison_artifact`` / ``on_poison`` are forwarded
    to the supervisor unchanged.
    """

    def __init__(
        self,
        backend,
        policy=None,
        containment=None,
        telemetry=None,
        poison_artifact=None,
        on_poison=None,
    ):
        self.backend = backend
        self.telemetry = telemetry
        self.supervisor = Supervisor(
            backend,
            policy=policy if isinstance(policy, SupervisorPolicy) else None,
            containment=containment,
            telemetry=telemetry,
            poison_artifact=poison_artifact,
            on_poison=on_poison,
        )

    # -- planning ---------------------------------------------------------

    def plan_cell(
        self,
        key,
        texts,
        logics,
        iterations_per_cell,
        workers,
        seed,
        strategy,
        quarantined,
        journal=None,
        skip_shards=(),
    ):
        """The cell's shard leases (skipping resumed ``skip_shards``)."""
        from repro.core.parallel import ShardTask

        leases = []
        for shard in range(workers):
            indices = shard_indices(iterations_per_cell, shard, workers)
            if len(indices) == 0 or shard in skip_shards:
                continue
            progress_path = None
            if journal is not None:
                from repro.robustness.journal import lease_progress_path

                progress_path = lease_progress_path(journal.path, key, shard, workers)
            task = ShardTask(
                oracle=key[2],
                seed_texts=texts,
                logics=logics,
                iterations=iterations_per_cell,
                shard=shard,
                of=workers,
                seed=seed,
                cell=key,
                solver_names=(key[0],),
                quarantined=tuple(sorted(quarantined)),
                strategy=strategy,
                progress_path=progress_path,
            )
            leases.append(self.supervisor.lease((key, shard), task, indices))
        return leases

    # -- the cell loop ----------------------------------------------------

    def run_cells(
        self,
        result,
        remaining,
        spec,
        iterations_per_cell,
        journal,
        partials,
        workers,
        strategy="fusion",
        sidecar_meta=None,
        fleet_sidecar=False,
    ):
        """Drive every remaining cell to completion; fold into ``result``.

        Mirrors the runner's process path cell for cell: canonical
        order, per-shard counters, quarantine aggregation between
        cells, journal commits per completed cell. With
        ``fleet_sidecar`` each merged shard is also recorded in the
        coordinator-side fleet sidecar (resume support for remote
        workers that cannot write host sidecars themselves).
        """
        from repro.campaign.runner import _absorb_cell
        from repro.core.parallel import collect_shard, serialize_seeds

        telemetry = self.telemetry
        side = None
        if fleet_sidecar and journal is not None:
            side = _open_fleet_sidecar(journal, sidecar_meta or {})
        quarantined = set()
        seed_text_cache = {}
        for key, _solver, seeds in remaining:
            cache_key = (key[1], key[2])
            if cache_key not in seed_text_cache:
                seed_text_cache[cache_key] = serialize_seeds(seeds)
            texts, logics = seed_text_cache[cache_key]
            have = {
                shard: report
                for (shard, of), report in partials.get(key, {}).items()
                if of == workers
            }
            leases = self.plan_cell(
                key,
                texts,
                logics,
                iterations_per_cell,
                workers,
                spec.config.seed,
                strategy,
                quarantined,
                journal=journal,
                skip_shards=have,
            )
            outcome = self.supervisor.run(leases)
            shard_reports = dict(have)
            counters = {
                shard: {"shard": shard, "of": workers, "pid": None, "resumed": True}
                for shard in have
            }
            for (_cell, shard), pairs in outcome.items():
                reports = []
                pid = None
                for _lease, payload in pairs:
                    reports.append(collect_shard(payload))
                    pid = payload["pid"]
                    if telemetry is not None and payload.get("telemetry") is not None:
                        telemetry.merge_snapshot(payload["telemetry"])
                shard_reports[shard] = (
                    reports[0] if len(reports) == 1 else merge_shard_reports(reports)
                )
                counters[shard] = {
                    "shard": shard,
                    "of": workers,
                    "pid": pid,
                    "resumed": False,
                }
                if side is not None:
                    side.record_shard(key, shard, workers, shard_reports[shard])
            for shard, report in shard_reports.items():
                counters[shard].update(report.counters())
                counters[shard]["elapsed"] = report.elapsed
            merged = merge_shard_reports(
                [shard_reports[shard] for shard in sorted(shard_reports)]
            )
            quarantined |= merged.quarantined
            result.shard_counters[key] = [counters[shard] for shard in sorted(counters)]
            _absorb_cell(result, key, merged, journal, telemetry)
        result.poisoned = list(self.supervisor.poisoned)
        result.supervision = dict(self.supervisor.counters)
        return result


def _open_fleet_sidecar(journal, meta):
    """The coordinator's own sidecar journal for remote-worker shards.

    Same stale-handling as a pool worker's pid sidecar: a leftover
    fleet sidecar stamped with different campaign parameters cannot
    line up with this run's shards, so it is removed and restarted.
    """
    from repro.robustness.journal import CampaignJournal, JournalError, sidecar_path

    path = sidecar_path(journal.path, "fleet")
    try:
        side = CampaignJournal(path)
        side.ensure_meta(**meta)
    except JournalError:
        os.remove(path)
        side = CampaignJournal(path)
        side.ensure_meta(**meta)
    side.unknown_split = True
    return side
