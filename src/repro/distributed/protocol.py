"""The coordinator/worker wire protocol: length-prefixed message frames.

A frame is ``4-byte big-endian payload length`` + ``payload``, where
the payload is one JSON object encoded as UTF-8 (or msgpack when both
ends negotiated it — msgpack is optional and the import is gated, so
the JSON codec is always available). Length-prefix framing survives
arbitrary TCP segmentation: :class:`FrameDecoder` buffers partial
frames and yields complete messages in order, and a truncated tail is
simply *pending*, never mis-decoded. Anything that cannot be a valid
frame — an oversized length, a payload that is not a JSON object —
raises :class:`ProtocolError` instead of guessing.

Message types (the ``type`` key of every frame):

==============  =========================================================
``hello``       worker → coordinator: ``pid``, ``protocol`` version
``spec``        coordinator → worker: the campaign WorkerSpec (sent once)
``ready``       worker → coordinator: pull request — "I want a lease"
``lease``       coordinator → worker: one ShardTask to run
``result``      worker → coordinator: the lease's payload (report,
                telemetry snapshot, guard states — all JSON-ready)
``error``       worker → coordinator: the lease failed in-process, with
                a death classification the supervisor understands
``status``      worker → coordinator: best-effort progress note
                (droppable by design; nothing depends on it)
``shutdown``    coordinator → worker: drain and exit 0
==============  =========================================================

The ``spec`` frame carries arbitrary campaign objects (solver
factories, triage policies, session configs) that are picklable but
not JSON-able; they cross as a base64 pickle blob inside the JSON
envelope — exactly the trust model of ``multiprocessing`` spawn
workers, which deserialize parent pickles too. A worker should only
ever connect to a coordinator it trusts (they are one campaign, one
security domain); the frame layer itself stays pickle-free so the
fuzz tests can throw arbitrary bytes at it safely.
"""

from __future__ import annotations

import base64
import json
import pickle
import struct
import threading

from repro.errors import ReproError

PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's payload (64 MiB). Real frames are a few
#: KiB (tasks) to a few MiB (shard reports with bug scripts); anything
#: bigger is a corrupt or hostile length prefix, not a message.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class ProtocolError(ReproError):
    """The byte stream cannot be a valid frame sequence."""


def _json_encode(message):
    return json.dumps(message, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _json_decode(payload):
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message


def _msgpack_codec():
    """The optional msgpack codec, or None when the wheel is absent.

    msgpack is not part of the baked toolchain; the protocol works
    identically (if a little larger on the wire) over JSON, so the
    dependency is gated, never required.
    """
    try:
        import msgpack
    except ImportError:
        return None

    def encode(message):
        return msgpack.packb(message, use_bin_type=True)

    def decode(payload):
        try:
            message = msgpack.unpackb(payload, raw=False)
        except Exception as exc:
            raise ProtocolError(f"frame payload is not valid msgpack: {exc}") from None
        if not isinstance(message, dict):
            raise ProtocolError("frame payload must decode to a map")
        return message

    return encode, decode


def available_codecs():
    """The codec names this interpreter can speak (JSON always)."""
    return ("json", "msgpack") if _msgpack_codec() else ("json",)


def _codec(name):
    if name == "json":
        return _json_encode, _json_decode
    if name == "msgpack":
        pair = _msgpack_codec()
        if pair is None:
            raise ProtocolError("msgpack codec requested but msgpack is not installed")
        return pair
    raise ProtocolError(f"unknown frame codec {name!r}")


def encode_frame(message, codec="json"):
    """One message as its on-the-wire bytes."""
    encode, _ = _codec(codec)
    payload = encode(message)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame ceiling"
        )
    return _LEN.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame decoder: feed bytes, collect complete messages.

    Tolerates any segmentation of the stream (one byte at a time, many
    frames at once) and never yields a message until its full payload
    arrived — ``pending`` reports whether a partial frame is buffered,
    which is how a reader distinguishes "clean end of stream" from "the
    peer died mid-frame".
    """

    def __init__(self, codec="json"):
        _, self._decode = _codec(codec)
        self._buffer = bytearray()

    @property
    def pending(self):
        """True when a partial frame is buffered (a torn tail so far)."""
        return len(self._buffer) > 0

    def feed(self, data):
        """Absorb ``data``; return the list of messages it completed."""
        self._buffer.extend(data)
        messages = []
        while True:
            if len(self._buffer) < _LEN.size:
                break
            (length,) = _LEN.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise ProtocolError(
                    f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte ceiling"
                )
            end = _LEN.size + length
            if len(self._buffer) < end:
                break
            payload = bytes(self._buffer[_LEN.size:end])
            del self._buffer[:end]
            messages.append(self._decode(payload))
        return messages


class Disconnected(ReproError):
    """The peer closed the connection (mid-frame when ``torn``)."""

    def __init__(self, message, torn=False):
        super().__init__(message)
        self.torn = torn


class FrameStream:
    """Blocking framed messaging over one connected socket.

    ``send`` is locked (worker threads and chaos hooks may interleave);
    ``recv`` is single-reader by convention. ``chaos`` is an optional
    :class:`~repro.distributed.netchaos.BoundNetChaos` consulted on the
    send path — the seam the network fault injector plugs into.
    """

    def __init__(self, sock, codec="json", chaos=None):
        self.sock = sock
        self.codec = codec
        self.chaos = chaos
        self._decoder = FrameDecoder(codec)
        self._messages = []
        self._send_lock = threading.Lock()

    def send(self, message):
        if self.chaos is not None and self.chaos.on_send(self, message):
            return  # the fault injector consumed (dropped) the frame
        self._send_raw(message)

    def _send_raw(self, message):
        data = encode_frame(message, self.codec)
        with self._send_lock:
            try:
                self.sock.sendall(data)
            except OSError as exc:
                raise Disconnected(f"send failed: {exc}") from None

    def recv(self):
        """The next message, blocking; :class:`Disconnected` at EOF."""
        while not self._messages:
            try:
                data = self.sock.recv(65536)
            except OSError as exc:
                raise Disconnected(f"recv failed: {exc}") from None
            if not data:
                raise Disconnected(
                    "peer closed the connection", torn=self._decoder.pending
                )
            self._messages.extend(self._decoder.feed(data))
        return self._messages.pop(0)

    def close(self):
        try:
            self.sock.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# Wire codecs for campaign objects
# ---------------------------------------------------------------------------


def pack_blob(obj):
    """An arbitrary picklable object as a JSON-safe base64 string."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def unpack_blob(text):
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except Exception as exc:
        raise ProtocolError(f"undecodable blob: {exc}") from None


def _opt_tuple(value):
    return None if value is None else tuple(value)


def task_to_wire(task):
    """A :class:`~repro.core.parallel.ShardTask` as a JSON-ready dict.

    Every field is already a scalar, string tuple, or int tuple — the
    lease machinery was built picklable, which is a superset of
    JSON-able here. Tuples flatten to lists on the wire and are
    restored by :func:`task_from_wire` (``_run_shard`` relies on
    ``cell`` being a tuple and ``indices`` supporting ``is None``).
    """
    return {
        "oracle": task.oracle,
        "seed_texts": list(task.seed_texts),
        "logics": list(task.logics),
        "iterations": task.iterations,
        "shard": task.shard,
        "of": task.of,
        "seed": task.seed,
        "cell": None if task.cell is None else list(task.cell),
        "solver_names": (
            None if task.solver_names is None else list(task.solver_names)
        ),
        "quarantined": list(task.quarantined),
        "strategy": task.strategy,
        "indices": None if task.indices is None else list(task.indices),
        "attempt": task.attempt,
        "lease_id": task.lease_id,
        "heartbeat_dir": task.heartbeat_dir,
        "progress_path": task.progress_path,
    }


def task_from_wire(data):
    from repro.core.parallel import ShardTask

    try:
        return ShardTask(
            oracle=data["oracle"],
            seed_texts=tuple(data["seed_texts"]),
            logics=tuple(data["logics"]),
            iterations=data["iterations"],
            shard=data["shard"],
            of=data["of"],
            seed=data["seed"],
            cell=_opt_tuple(data.get("cell")),
            solver_names=_opt_tuple(data.get("solver_names")),
            quarantined=tuple(data.get("quarantined", ())),
            strategy=data.get("strategy", "fusion"),
            indices=_opt_tuple(data.get("indices")),
            attempt=data.get("attempt", 0),
            lease_id=data.get("lease_id"),
            heartbeat_dir=data.get("heartbeat_dir"),
            progress_path=data.get("progress_path"),
        )
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed lease frame: {exc}") from None


def parse_address(text):
    """``HOST:PORT`` → ``(host, port)`` (IPv4/hostname spellings)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(f"address must be HOST:PORT, got {text!r}")
    return host, int(port)
