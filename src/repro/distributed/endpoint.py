"""The coordinator's side of the fleet transport: :class:`TcpFleet`.

A :class:`TcpFleet` is a drop-in backend for the
:class:`~repro.robustness.supervisor.Supervisor` — same ``submit`` /
``respawn`` / ``kill_worker`` / ``heartbeat_dir`` /
``broken_exceptions`` surface as the process pool's
:class:`~repro.core.parallel.SupervisedPoolBackend` — whose workers
are *separate Python processes on sockets* instead of pool children.
It listens on a TCP address, handshakes each connecting ``yinyang
worker``, and schedules leases by **pull-based work stealing**: a
worker that wants work sends ``ready``; the fleet hands it a pending
lease chosen by a seeded RNG. Distinct ``steal_seed`` values produce
distinct assignment interleavings — which worker ran which shard in
which order — and the determinism matrix asserts the merged journal
cannot tell them apart.

Failure vocabulary (the part that keeps supervision honest):

- A **worker disconnect** fails only *that worker's in-flight lease*,
  with :class:`WorkerDisconnected` carrying the ``net-disconnect``
  classification. It is an ordinary lease failure — retry with
  backoff, then bisection — NOT pool breakage. This asymmetry with
  ``BrokenProcessPool`` is deliberate: an executor shares one result
  pipe, so one death poisons everything; a socket fleet loses exactly
  one worker, and treating that as fleet-wide would re-run leases
  still healthily in flight elsewhere, double-counting their payloads
  in the merge. The fleet quietly respawns the lost worker (when it
  was one we spawned) so capacity recovers without the supervisor's
  involvement.
- :class:`FleetBroken` is reserved for *the whole fleet* becoming
  unusable (every spawned worker gone past the respawn budget): then
  every pending and in-flight lease fails with it, the supervisor's
  ``_recover`` path calls :meth:`TcpFleet.respawn`, and the campaign
  restarts its capacity under the usual ``max_worker_restarts`` cap.

Same-host note: heartbeat and progress files assume workers share the
coordinator's filesystem (localhost or a mount) — see
:mod:`repro.distributed.worker`.
"""

from __future__ import annotations

import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import threading
from collections import deque
from concurrent.futures import Future
from random import Random

from repro.distributed.protocol import (
    PROTOCOL_VERSION,
    Disconnected,
    FrameStream,
    ProtocolError,
    pack_blob,
    task_to_wire,
)
from repro.errors import ReproError

#: The classification a disconnect-failed lease carries into the
#: supervisor's retry/bisection machinery.
NET_DISCONNECT = "net-disconnect"


class FleetBroken(ReproError):
    """The whole fleet is gone — the supervisor should respawn it."""


class WorkerDisconnected(ReproError):
    """One worker's connection dropped with this lease in flight."""

    classification = NET_DISCONNECT


class RemoteLeaseError(ReproError):
    """A lease failed in-process on a remote worker (which survived)."""

    def __init__(self, message, classification):
        super().__init__(message)
        self.classification = classification


class _Remote:
    """One connected worker, as the coordinator sees it."""

    def __init__(self, stream, pid, index):
        self.stream = stream
        self.pid = pid
        self.index = index
        self.alive = True
        self.current = None  # (task, future) while a lease is in flight


class TcpFleet:
    """A supervisable lease backend over a socket worker fleet.

    ``spawn_workers`` local ``yinyang worker`` processes are started
    against the listen address (default: ``workers``, i.e. a
    self-contained fleet); pass 0 to only serve externally-started
    workers (the two-terminal setup). ``net_chaos`` ships to every
    worker in its spec frame. The fleet is a context manager and
    teardown is idempotent — ``close`` may be called any number of
    times, including after a failed construction.
    """

    broken_exceptions = (FleetBroken,)

    def __init__(
        self,
        workers,
        spec,
        listen=("127.0.0.1", 0),
        steal_seed=0,
        spawn_workers=None,
        net_chaos=None,
        heartbeat_dir=None,
        telemetry=None,
        codec="json",
        max_worker_respawns=16,
    ):
        self.workers = max(1, workers)
        self.spec = spec
        self.net_chaos = net_chaos
        self.telemetry = telemetry
        self.codec = codec
        self.steal_seed = steal_seed
        self.max_worker_respawns = max_worker_respawns
        self._own_heartbeat_dir = heartbeat_dir is None
        self.heartbeat_dir = (
            tempfile.mkdtemp(prefix="repro-heartbeat-")
            if heartbeat_dir is None
            else os.fspath(heartbeat_dir)
        )
        self._lock = threading.Lock()
        self._queue = []  # [(task, future)] — pending leases, steal pool
        self._ready = deque()  # _Remote instances asking for work
        self._inflight = {}  # lease_id -> (_Remote, future)
        self._remotes = {}  # worker index -> _Remote
        self._procs = {}  # pid -> Popen (workers we spawned)
        self._threads = []
        self._next_index = 0
        self._respawns = 0
        self._closed = False
        self._broken = False
        # One RNG for the whole campaign's steal decisions: the seed
        # names an interleaving family, and the determinism matrix runs
        # several seeds to prove journals are interleaving-blind.
        self._steal_rng = Random(f"fleet-steal:{steal_seed}")
        host, port = listen
        try:
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listener.bind((host, port))
            self._listener.listen(max(8, 2 * self.workers))
            self.address = self._listener.getsockname()
            accept = threading.Thread(
                target=self._accept_loop, name="fleet-accept", daemon=True
            )
            accept.start()
            self._threads.append(accept)
            target = self.workers if spawn_workers is None else spawn_workers
            self._spawn_target = target
            for _ in range(target):
                self._spawn_one()
        except BaseException:
            self.close()
            raise

    # -- the supervisor-facing surface -----------------------------------

    def submit(self, task):
        if task.lease_id is None:
            raise ValueError(
                "TcpFleet only runs supervised leases (lease_id is stamped "
                "by the Supervisor); use ShardedPool for bare shards"
            )
        with self._lock:
            if self._closed or self._broken:
                raise FleetBroken("the fleet is closed")
            future = Future()
            self._queue.append((task, future))
            self._count("fleet.leases")
            self._dispatch_locked()
        return future

    def respawn(self):
        """Tear down every spawned worker; stand up a fresh fleet."""
        with self._lock:
            procs = dict(self._procs)
            self._procs.clear()
            remotes = list(self._remotes.values())
            self._remotes.clear()
            self._ready.clear()
            self._broken = False
            self._respawns = 0
        exitcodes = {}
        for remote in remotes:
            remote.alive = False
            remote.stream.close()
        for pid, proc in procs.items():
            if proc.poll() is None:
                proc.terminate()
            try:
                exitcodes[pid] = proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                exitcodes[pid] = proc.wait(timeout=5)
        self._count("fleet.respawns")
        for _ in range(self._spawn_target):
            self._spawn_one()
        return exitcodes

    def kill_worker(self, pid):
        """SIGKILL one worker (hang recovery; same-host fleets)."""
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError:
            pass  # already gone

    def close(self):
        """Idempotent, exception-safe teardown (satellite of PR 9)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            remotes = list(self._remotes.values())
            self._remotes.clear()
            self._ready.clear()
            pending = [entry for entry in self._queue]
            self._queue.clear()
            inflight = list(self._inflight.values())
            self._inflight.clear()
            procs = dict(self._procs)
            self._procs.clear()
        try:
            listener = getattr(self, "_listener", None)
            if listener is not None:
                try:
                    listener.close()
                except OSError:
                    pass
            for _task, future in pending:
                future.cancel()
            for _remote, future in inflight:
                if not future.done():
                    future.set_exception(FleetBroken("fleet closed mid-lease"))
            for remote in remotes:
                remote.alive = False
                try:
                    remote.stream.send({"type": "shutdown"})
                except Disconnected:
                    pass
                remote.stream.close()
            for proc in procs.values():
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait(timeout=5)
        finally:
            if self._own_heartbeat_dir:
                shutil.rmtree(self.heartbeat_dir, ignore_errors=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    # -- spawning local workers ------------------------------------------

    def _spawn_one(self):
        host, port = self.address
        env = dict(os.environ)
        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        # Ship the coordinator's import path, exactly as multiprocessing
        # spawn does: the spec blob may reference campaign objects (solver
        # factories, policies) defined in modules only the parent's
        # sys.path can resolve. Externally-started workers must arrange
        # their own path instead.
        paths = dict.fromkeys([src] + [p for p in sys.path if p])
        if env.get("PYTHONPATH"):
            paths.update(dict.fromkeys(env["PYTHONPATH"].split(os.pathsep)))
        env["PYTHONPATH"] = os.pathsep.join(paths)
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "worker",
                "--connect",
                f"{host}:{port}",
            ],
            env=env,
        )
        with self._lock:
            if self._closed:
                proc.terminate()
                return
            self._procs[proc.pid] = proc

    # -- the wire side ----------------------------------------------------

    def _accept_loop(self):
        while True:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed: fleet teardown
            thread = threading.Thread(
                target=self._serve, args=(conn,), name="fleet-conn", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve(self, conn):
        stream = FrameStream(conn, self.codec)
        try:
            hello = stream.recv()
        except (Disconnected, ProtocolError):
            stream.close()
            return
        if hello.get("type") != "hello" or hello.get("protocol") != PROTOCOL_VERSION:
            stream.close()
            return
        with self._lock:
            if self._closed:
                remote = None
            else:
                index = self._next_index
                self._next_index += 1
                remote = _Remote(stream, pid=hello.get("pid"), index=index)
                self._remotes[index] = remote
        if remote is None:
            stream.close()
            return
        try:
            stream.send(
                {
                    "type": "spec",
                    "blob": pack_blob(self.spec),
                    "net_chaos": (
                        pack_blob(self.net_chaos)
                        if self.net_chaos is not None
                        else None
                    ),
                    "worker_index": remote.index,
                }
            )
        except Disconnected:
            self._drop(remote)
            return
        self._count("fleet.connects")
        try:
            while True:
                message = stream.recv()
                self._on_message(remote, message)
        except (Disconnected, ProtocolError):
            self._drop(remote)

    def _on_message(self, remote, message):
        kind = message.get("type")
        if kind == "ready":
            with self._lock:
                if remote.alive and not self._closed:
                    self._ready.append(remote)
                    self._dispatch_locked()
        elif kind == "result":
            with self._lock:
                entry = self._inflight.pop(message.get("lease_id"), None)
                if entry is not None:
                    entry[0].current = None
            if entry is None:
                self._count("fleet.duplicate_results")  # chaos dup, or stale
            else:
                self._count("fleet.results")
                entry[1].set_result(message["payload"])
        elif kind == "error":
            with self._lock:
                entry = self._inflight.pop(message.get("lease_id"), None)
                if entry is not None:
                    entry[0].current = None
            if entry is not None:
                self._count("fleet.lease_errors")
                entry[1].set_exception(
                    RemoteLeaseError(
                        message.get("message", "remote lease failed"),
                        message.get("classification", "worker-error:remote"),
                    )
                )
        elif kind == "status":
            self._count("fleet.status_frames")
        # unknown frame kinds are ignored: forward compatibility

    def _dispatch_locked(self):
        """Pair pending leases with ready workers (work stealing)."""
        while self._queue and self._ready:
            remote = self._ready.popleft()
            if not remote.alive:
                continue
            choice = self._steal_rng.randrange(len(self._queue))
            task, future = self._queue.pop(choice)
            if future.done():
                self._ready.appendleft(remote)
                continue
            remote.current = (task, future)
            self._inflight[task.lease_id] = (remote, future)
            try:
                remote.stream.send({"type": "lease", "task": task_to_wire(task)})
            except Disconnected:
                # The worker died between ready and lease: requeue the
                # lease for free (it never started) and drop the worker.
                remote.current = None
                self._inflight.pop(task.lease_id, None)
                self._queue.insert(0, (task, future))
                self._drop_locked(remote)
            else:
                self._count("fleet.steals")

    def _drop(self, remote):
        with self._lock:
            respawn = self._drop_locked(remote)
        if respawn:
            self._count("fleet.worker_respawns")
            self._spawn_one()

    def _drop_locked(self, remote):
        """Handle one worker's departure; return whether to respawn it.

        Idempotent per worker (send-failure and recv-EOF paths can
        race). Fails the worker's in-flight lease — only that lease —
        and breaks the whole fleet only when the last spawned worker is
        gone past the respawn budget.
        """
        if not remote.alive:
            return False
        remote.alive = False
        self._remotes.pop(remote.index, None)
        try:
            self._ready.remove(remote)
        except ValueError:
            pass
        remote.stream.close()
        self._count("fleet.disconnects")
        current = remote.current
        remote.current = None
        if current is not None:
            task, future = current
            self._inflight.pop(task.lease_id, None)
            if not future.done():
                future.set_exception(
                    WorkerDisconnected(
                        f"worker pid={remote.pid} disconnected holding "
                        f"lease {task.lease_id}"
                    )
                )
        if self._closed:
            return False
        proc = self._procs.pop(remote.pid, None)
        if proc is not None:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
            if self._respawns < self.max_worker_respawns:
                self._respawns += 1
                return True
        if not self._remotes and not self._procs and self._spawn_target > 0:
            self._break_locked()
        return False

    def _break_locked(self):
        """No capacity left and none coming: fail everything pending."""
        self._broken = True
        failures = [future for _task, future in self._queue]
        self._queue.clear()
        failures.extend(future for _remote, future in self._inflight.values())
        self._inflight.clear()
        for future in failures:
            if not future.done():
                future.set_exception(
                    FleetBroken("every fleet worker is gone past the respawn budget")
                )

    def _count(self, name, n=1):
        if self.telemetry is not None:
            self.telemetry.count(name, n)
