"""The fleet worker: pull leases over a socket, run them locally.

``yinyang worker --connect HOST:PORT`` runs :func:`run_worker`: connect
to a coordinator, receive the campaign :class:`~repro.core.parallel.WorkerSpec`
once, adopt this process as a campaign worker via the same
``install_worker_state`` seam the spawn pool uses, then loop —
``ready`` → ``lease`` → run → ``result``.

The crucial property is what this module does *not* reimplement: a
lease runs through :func:`repro.core.parallel.run_worker_task`, the
exact entry point pool workers execute. Sessions, triage, containment
rlimits, heartbeat files, and crash-safe progress checkpoints all work
unchanged; the socket replaces pickling-over-pipes, nothing else. That
is why the fleet inherits byte-identical journals instead of having to
re-prove them: a tcp worker computing iteration ``i`` is the same pure
function of ``(strategy, seed, i)`` a pool worker is.

Same-host note: heartbeat files and progress checkpoints are paths on
the *coordinator's* filesystem, so today's fleet assumes workers share
that filesystem (localhost, or a shared mount). True cross-host
heartbeats belong on the wire and are future work; everything else
already crosses it.
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import replace

from repro.distributed.netchaos import DISCONNECT, DISCONNECT_EXIT
from repro.distributed.protocol import (
    PROTOCOL_VERSION,
    Disconnected,
    FrameStream,
    ProtocolError,
    available_codecs,
    parse_address,
    task_from_wire,
    unpack_blob,
)
from repro.robustness.containment import classify_exception


class _WireChaos:
    """Composes planned network disconnects over an optional process plan.

    Installed as the worker state's ``chaos_process`` so disconnects
    fire at exactly the same point in the iteration loop process-level
    faults do: after the heartbeat (the death is attributable), before
    the iteration runs (the iteration's work is never half-done).
    ``os._exit`` skips interpreter teardown on purpose — a partitioned
    peer does not get to flush buffers or run finalizers either.
    """

    def __init__(self, plan, stream, base=None):
        self.plan = plan
        self.stream = stream
        self.base = base

    def fire(self, index, attempt):
        if self.base is not None:
            self.base.fire(index, attempt)
        if self.plan.fault_for(index, attempt) == DISCONNECT:
            self.stream.close()
            os._exit(DISCONNECT_EXIT)


def _connect(host, port, timeout, retry_interval=0.2):
    """Keep dialing until the coordinator listens (or ``timeout`` runs out).

    Lets a worker terminal be started before (or just after) the
    coordinator without a race; refused connections are retried,
    anything else propagates.
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except ConnectionRefusedError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(retry_interval)
        else:
            sock.settimeout(None)
            return sock


def run_worker(address, net_chaos=None, codec="json", connect_timeout=30.0):
    """Serve one coordinator until it shuts the fleet down; return exit code.

    ``address`` is ``HOST:PORT`` (or a ``(host, port)`` pair);
    ``net_chaos`` optionally overrides the plan shipped in the spec
    frame (the CLI's ``--net-chaos``). A coordinator that disappears
    without a ``shutdown`` frame is treated as normal teardown — the
    worker exits 0 rather than paging anyone about a campaign that is
    simply over.
    """
    host, port = parse_address(address) if isinstance(address, str) else address
    sock = _connect(host, port, connect_timeout)
    stream = FrameStream(sock, codec)
    try:
        stream.send(
            {
                "type": "hello",
                "pid": os.getpid(),
                "protocol": PROTOCOL_VERSION,
                "codecs": list(available_codecs()),
            }
        )
        try:
            message = stream.recv()
        except Disconnected:
            return 0  # coordinator full, or gone before the handshake
        if message.get("type") != "spec":
            raise ProtocolError(
                f"expected a spec frame, got {message.get('type')!r}"
            )
        spec = unpack_blob(message["blob"])
        plan = net_chaos
        if plan is None and message.get("net_chaos"):
            plan = unpack_blob(message["net_chaos"])
        if plan is not None:
            stream.chaos = plan.bind(message.get("worker_index", 0))
            spec = replace(
                spec, chaos_process=_WireChaos(plan, stream, spec.chaos_process)
            )
        # Remote workers never write host-path sidecars: the journal
        # lives on the coordinator, which records fleet shards itself.
        spec = replace(spec, journal_path=None, journal_meta={})
        from repro.core.parallel import install_worker_state, run_worker_task

        install_worker_state(spec)
        return _serve(stream, run_worker_task)
    finally:
        stream.close()


def _serve(stream, run_task):
    pid = os.getpid()
    while True:
        stream.send({"type": "ready", "pid": pid})
        try:
            message = stream.recv()
        except Disconnected:
            return 0
        kind = message.get("type")
        if kind == "shutdown":
            return 0
        if kind != "lease":
            raise ProtocolError(f"unexpected frame from coordinator: {kind!r}")
        task = task_from_wire(message["task"])
        # Best-effort progress note — the one frame kind NetChaos may
        # drop, precisely because nothing downstream depends on it.
        stream.send(
            {"type": "status", "pid": pid, "lease_id": task.lease_id, "event": "start"}
        )
        try:
            payload = run_task(task)
        except Exception as exc:
            # The lease failed in-process but this worker survived:
            # ship the failure with its classification so the
            # coordinator's supervisor can drive the ordinary
            # retry/bisection path without guessing.
            stream.send(
                {
                    "type": "error",
                    "pid": pid,
                    "lease_id": task.lease_id,
                    "classification": classify_exception(exc),
                    "message": f"{type(exc).__name__}: {exc}",
                }
            )
        else:
            stream.send(
                {
                    "type": "result",
                    "pid": pid,
                    "lease_id": task.lease_id,
                    "payload": payload,
                }
            )
