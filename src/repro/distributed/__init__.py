"""Distributed campaigns: a coordinator and a work-stealing worker fleet.

PR 2 sharded a campaign over one host's process pool; this package
generalizes the same shard/sidecar-merge design across a *transport
seam* so the fleet can span processes that are not our pool's children
— today separate Python processes on a socket (``yinyang worker
--connect HOST:PORT``), SSH-launched hosts next.

The pieces:

- :mod:`~repro.distributed.protocol` — the length-prefixed JSON (or
  msgpack, when available) frame format every coordinator/worker pair
  speaks, plus the wire codecs for :class:`~repro.core.parallel.ShardTask`
  and worker result payloads;
- :mod:`~repro.distributed.worker` — the worker side: connect, receive
  the campaign spec once, then pull leases and run them through the
  *exact* worker path process mode uses (:func:`repro.core.parallel._run_shard`
  — sessions, triage, containment, heartbeats and progress checkpoints
  all intact), shipping reports + telemetry snapshots back as frames;
- :mod:`~repro.distributed.endpoint` — the coordinator side of the
  transport: :class:`~repro.distributed.endpoint.TcpFleet` listens,
  hands queued leases to whichever worker asks first (pull-based work
  stealing, tie-broken by a seeded RNG so distinct steal orders are
  reproducible), and translates disconnects into the supervisor's
  retry vocabulary;
- :mod:`~repro.distributed.coordinator` — the campaign plan owner:
  cells become iteration-range leases driven to completion by the
  PR 6 :class:`~repro.robustness.supervisor.Supervisor` (retry/backoff,
  poison bisection) over any backend — the in-process pool or a socket
  fleet;
- :mod:`~repro.distributed.netchaos` — seeded network fault injection
  (drop/delay/duplicate/disconnect) extending the chaos layer across
  the wire.

The headline invariant is inherited, not re-proven per backend:
deterministic-mode journals are byte-identical for any fleet shape —
serial, thread, process, tcp, any worker count, any steal order (see
``tests/test_distributed.py``).
"""

from repro.distributed.coordinator import Coordinator
from repro.distributed.endpoint import FleetBroken, TcpFleet, WorkerDisconnected
from repro.distributed.netchaos import NetChaos, parse_net_chaos
from repro.distributed.protocol import (
    FrameDecoder,
    FrameStream,
    ProtocolError,
    encode_frame,
)
from repro.distributed.worker import run_worker

__all__ = [
    "Coordinator",
    "FleetBroken",
    "FrameDecoder",
    "FrameStream",
    "NetChaos",
    "ProtocolError",
    "TcpFleet",
    "WorkerDisconnected",
    "encode_frame",
    "parse_net_chaos",
    "run_worker",
]
