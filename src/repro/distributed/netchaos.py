"""Seeded network fault injection for socket fleets.

:class:`~repro.robustness.chaos.ProcessChaos` makes worker *processes*
die on plan; :class:`NetChaos` extends the same discipline to the
*wire*. Two fault families, matching how real networks fail:

- **Planned disconnects** (``disconnect_at``): when a worker is about
  to run a listed global iteration id — and the lease's attempt is
  still below ``attempts`` — it closes its coordinator socket and
  exits. From the coordinator's side this is indistinguishable from a
  network partition or a remote host loss: the connection drops with a
  lease outstanding. Attempt gating makes recovery provable, exactly
  as for process chaos: ``attempts=1`` means the supervised retry of
  the lease sails through on another worker.

- **Seeded frame faults**: per-frame coin flips (one
  ``random.Random(seed)`` per connection) that *drop*, *duplicate*, or
  *delay* frames on the send path. Faults are restricted to frame
  types the protocol is designed to survive — drops hit only
  best-effort ``status`` frames (nothing depends on them), duplicates
  hit only ``result`` frames (the coordinator dedupes by lease id),
  and delays hit anything (TCP already reorders timing). A fault that
  the protocol is *not* designed to survive (dropping a result) would
  just be a hang, which is the heartbeat watchdog's job, not this
  injector's.

The payoff is the same as every chaos layer here: the soak test can
assert that a campaign crossed by disconnects and frame noise merges
to the byte-identical deterministic journal.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

#: NetChaos fault kinds.
DISCONNECT, DROP, DUP, DELAY = "net-disconnect", "net-drop", "net-dup", "net-delay"

#: The exit code a chaos-disconnected worker dies with. Distinct from
#: real failure codes so a log reader can tell an injected partition
#: from an organic crash; the coordinator treats any disconnect the
#: same way regardless.
DISCONNECT_EXIT = 70


@dataclass(frozen=True)
class NetChaos:
    """A picklable plan of network faults for one fleet campaign.

    ``disconnect_at`` names global iteration ids (gated on the lease
    ``attempt`` like :class:`~repro.robustness.chaos.ProcessChaos`);
    the probabilities drive per-frame seeded coin flips on each
    connection's send path.
    """

    disconnect_at: tuple = ()
    attempts: int = 1
    p_drop_status: float = 0.0
    p_dup_result: float = 0.0
    p_delay: float = 0.0
    delay_seconds: float = 0.01
    seed: int = 0

    def __post_init__(self):
        if self.attempts < 0:
            raise ValueError("attempts must be >= 0")
        for label, p in (
            ("p_drop_status", self.p_drop_status),
            ("p_dup_result", self.p_dup_result),
            ("p_delay", self.p_delay),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} must be in [0, 1]")

    def fault_for(self, index, attempt):
        """The planned fault for this iteration/attempt, or None (pure)."""
        if attempt >= self.attempts:
            return None
        if index in self.disconnect_at:
            return DISCONNECT
        return None

    def bind(self, worker_id=0):
        """A per-connection injector (own RNG stream, own counters)."""
        return BoundNetChaos(self, worker_id)


class BoundNetChaos:
    """One connection's fault state: plugged into ``FrameStream.chaos``.

    ``on_send(stream, message)`` returns True when it consumed the
    frame (a drop) — the stream then skips its own send. Duplication
    sends the extra copy here and returns False so the normal send
    path delivers the second. The RNG stream is seeded per worker id,
    so two workers' fault sequences are independent but each replays
    exactly given the same frame sequence.
    """

    def __init__(self, plan, worker_id=0):
        self.plan = plan
        self.rng = random.Random(f"netchaos:{plan.seed}:{worker_id}")
        self.injected = {DROP: 0, DUP: 0, DELAY: 0}

    def on_send(self, stream, message):
        plan = self.plan
        if plan.p_delay > 0.0 and self.rng.random() < plan.p_delay:
            self.injected[DELAY] += 1
            time.sleep(plan.delay_seconds)
        kind = message.get("type")
        if (
            kind == "status"
            and plan.p_drop_status > 0.0
            and self.rng.random() < plan.p_drop_status
        ):
            self.injected[DROP] += 1
            return True
        if (
            kind == "result"
            and plan.p_dup_result > 0.0
            and self.rng.random() < plan.p_dup_result
        ):
            self.injected[DUP] += 1
            stream._send_raw(message)  # first copy; caller sends the second
        return False


def parse_net_chaos(spec):
    """A :class:`NetChaos` from its CLI spelling.

    ``spec`` is semicolon-separated ``key=value`` pairs; iteration
    lists are comma-separated. Example::

        disconnect=3,11;attempts=1;drop=0.2;dup=0.2;delay=0.05;seed=9

    Keys: ``disconnect`` (global iteration ids), ``attempts``,
    ``drop`` (p of dropping a status frame), ``dup`` (p of duplicating
    a result frame), ``delay`` (p of delaying any frame),
    ``delay_seconds``, ``seed``.
    """
    kwargs = {}
    for part in spec.split(";"):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        key = key.strip()
        if not sep:
            raise ValueError(f"net-chaos field {part!r} is not key=value")
        if key == "disconnect":
            kwargs["disconnect_at"] = tuple(
                int(item) for item in value.split(",") if item.strip()
            )
        elif key == "attempts":
            kwargs["attempts"] = int(value)
        elif key == "drop":
            kwargs["p_drop_status"] = float(value)
        elif key == "dup":
            kwargs["p_dup_result"] = float(value)
        elif key == "delay":
            kwargs["p_delay"] = float(value)
        elif key == "delay_seconds":
            kwargs["delay_seconds"] = float(value)
        elif key == "seed":
            kwargs["seed"] = int(value)
        else:
            raise ValueError(f"unknown net-chaos field {key!r}")
    return NetChaos(**kwargs)
