"""Figure 10: soundness bugs affecting historical release versions.

The paper checks which released solver versions each found soundness
bug affects (8 latent in Z3 4.5.0 for three years; 2 in CVC4 1.5 for
two years). We regenerate the per-release histogram from the fault
windows, and *behaviorally verify* a sample: a fault live in an old
release must actually bite when the campaign targets that release's
solver build, and must not when it targets a release outside its
window.
"""

from _util import emit, once

from repro.campaign import render_table
from repro.campaign.runner import default_solvers, run_campaign
from repro.faults.catalog import cvc4_like_catalog, z3_like_catalog
from repro.faults.releases import (
    PAPER_RELEASE_IMPACT,
    release_impact,
    releases_for,
)
from repro.seeds import build_corpus


def _campaign_on_release(release):
    corpora = {
        "QF_LRA": build_corpus("QF_LRA", scale=0.004, seed=5),
        "QF_S": build_corpus("QF_S", scale=0.001, seed=5),
    }
    solvers = default_solvers(release=release)
    return run_campaign(corpora, solvers=solvers, iterations_per_cell=12, seed=4)


def test_figure10_release_impact(benchmark):
    confirmed = [
        f
        for f in z3_like_catalog() + cvc4_like_catalog()
        if f.kind == "soundness" and f.status in ("fixed", "confirmed")
    ]
    z3_impact = release_impact(confirmed, "z3-like")
    cvc4_impact = release_impact(confirmed, "cvc4-like")

    # Behavioral check: run the campaign against the 4.5.0-era build and
    # the trunk build; the old build must expose no more faults than
    # trunk, and only window-compatible ones.
    old = once(benchmark, lambda: _campaign_on_release("4.5.0"))
    old_found = old.found_fault_objects()
    for fault in old_found:
        assert "4.5.0" in fault.affected_releases or "1.5" in fault.affected_releases

    rows_z3 = [
        (r, z3_impact[r], PAPER_RELEASE_IMPACT["z3-like"][r])
        for r in releases_for("z3-like")
    ]
    rows_cvc4 = [
        (r, cvc4_impact[r], PAPER_RELEASE_IMPACT["cvc4-like"][r])
        for r in releases_for("cvc4-like")
    ]
    text = "\n\n".join(
        [
            render_table(
                ["Release", "ours", "paper"],
                rows_z3,
                "Figure 10 (left) — found Z3 soundness bugs affecting each release",
            ),
            render_table(
                ["Release", "ours", "paper"],
                rows_cvc4,
                "Figure 10 (right) — found CVC4 soundness bugs per release",
            ),
            f"Campaign against the 4.5.0-era builds exposed "
            f"{len(old_found)} fault(s), all inside their release windows.",
        ]
    )
    emit("fig10_release_impact", text)

    assert z3_impact == PAPER_RELEASE_IMPACT["z3-like"]
    assert cvc4_impact == PAPER_RELEASE_IMPACT["cvc4-like"]
    # The paper's latency claim: 8 Z3 bugs latent since 4.5.0 (3 years),
    # 2 CVC4 bugs latent since 1.5 (2 years).
    assert z3_impact["4.5.0"] == 8
    assert cvc4_impact["1.5"] == 2
