"""Term-layer micro-benchmarks: interning, substitution, evaluation.

The hash-consed term layer is the PR-3 performance tentpole; these
benches record its vital signs so regressions are visible in
``benchmarks/results/term_ops.txt``:

- intern hit rate while parsing a realistic corpus (how much sharing
  hash-consing actually finds),
- ``substitute``/``random_occurrence_substitution`` ops/s on
  shared-subterm formulas (the fusion inner loop), and
- ``evaluate`` ops/s on a fused-style conjunction (the oracle check).

A micro-assert also pins the cached-``__hash__`` invariant: hashing a
term must not rebuild the structural hash (it is precomputed at
construction and identical across calls).
"""

import random

from _util import emit

from repro.semantics.evaluator import evaluate
from repro.semantics.model import Model
from repro.smtlib import builder as b
from repro.smtlib.ast import (
    fresh_scope,
    intern_stats,
    reset_intern_stats,
    substitute,
)
from repro.core.substitution import random_occurrence_substitution
from repro.seeds import build_corpus
from repro.smtlib.parser import parse_script
from repro.smtlib.printer import print_script

_LINES = []


def _record(line):
    _LINES.append(line)
    emit("term_ops", "Term-layer micro-benchmarks\n" + "\n".join(_LINES) + "\n")


def _shared_formula(width=24):
    """A conjunction with heavy subterm sharing, fusion-style."""
    x, y = b.int_var("x"), b.int_var("y")
    core = b.add(b.mul(x, y), b.sub(x, y), 1)
    parts = [b.gt(b.add(core, i), b.mul(core, 2)) for i in range(width)]
    return x, b.and_(*parts)


def test_hash_is_cached_micro_assert():
    _, phi = _shared_formula()
    first = hash(phi)
    assert first == phi._hash  # precomputed at construction...
    assert hash(phi) == first  # ...and stable on every probe
    # An O(1) dict hit on a 100+-node term is the point of the cache.
    assert {phi: 1}[phi] == 1


def test_intern_hit_rate(benchmark):
    corpus = build_corpus("QF_LIA", scale=0.004, seed=21)
    texts = [print_script(s.script) for s in corpus.seeds]

    def parse_all():
        with fresh_scope():
            reset_intern_stats()
            for text in texts:
                parse_script(text)
            return intern_stats()

    stats = benchmark(parse_all)
    hit_rate = stats["hits"] / (stats["hits"] + stats["misses"])
    _record(
        f"intern hit rate  : {hit_rate:6.1%} over {len(texts)} parsed seeds "
        f"({stats['hits']:,} hits / {stats['misses']:,} misses, "
        f"table size {stats['size']:,})"
    )
    # Real corpora repeat structure; hash-consing must find a lot of it.
    assert hit_rate > 0.30


def test_substitute_ops(benchmark):
    x, phi = _shared_formula()
    replacement = b.add(b.int_var("z"), 3)

    def run():
        return substitute(phi, {x: replacement})

    out = benchmark(run)
    assert out is not phi
    per_second = 1.0 / benchmark.stats.stats.mean
    _record(f"substitute       : {per_second:>12,.0f} ops/s (shared-subterm formula)")


def test_random_occurrence_substitution_ops(benchmark):
    x, phi = _shared_formula()
    replacement = b.add(b.int_var("z"), 3)
    rng = random.Random(7)

    def run():
        return random_occurrence_substitution(phi, x, replacement, rng, 0.5)

    _, _, total = benchmark(run)
    assert total > 0
    per_second = 1.0 / benchmark.stats.stats.mean
    _record(f"phi[e/x]_R       : {per_second:>12,.0f} ops/s (fusion inner loop)")


def test_evaluate_ops(benchmark):
    _, phi = _shared_formula()
    model = Model()
    model["x"] = 5
    model["y"] = -3

    def run():
        return evaluate(phi, model)

    value = benchmark(run)
    assert value in (True, False)
    per_second = 1.0 / benchmark.stats.stats.mean
    _record(f"evaluate         : {per_second:>12,.0f} ops/s (oracle ground check)")
