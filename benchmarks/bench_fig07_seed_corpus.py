"""Figure 7: the seed-formula corpus, family by family.

The paper seeds YinYang with 75,097 formulas from nine benchmark
suites. This bench regenerates the table with our generated corpora
(scaled; the SAT/UNSAT proportions per family are preserved exactly)
and reports the per-family counts next to the paper's.
"""

from _util import emit, once

from repro.campaign.report import render_table
from repro.seeds import PAPER_SEED_COUNTS, build_all_corpora
from repro.seeds.corpus import figure7_rows

SCALE = 0.004


def test_figure7_seed_corpus(benchmark):
    corpora = once(benchmark, lambda: build_all_corpora(scale=SCALE, seed=7))

    rows = []
    total_ours = [0, 0]
    total_paper = [0, 0]
    for family, unsat, sat, total in figure7_rows(corpora):
        paper_unsat, paper_sat = PAPER_SEED_COUNTS[family]
        rows.append(
            (family, unsat, sat, total, paper_unsat, paper_sat, paper_unsat + paper_sat)
        )
        total_ours[0] += unsat
        total_ours[1] += sat
        total_paper[0] += paper_unsat
        total_paper[1] += paper_sat
    rows.append(
        (
            "TOTAL",
            total_ours[0],
            total_ours[1],
            sum(total_ours),
            total_paper[0],
            total_paper[1],
            sum(total_paper),
        )
    )
    emit(
        "fig07_seed_corpus",
        render_table(
            ["Benchmark", "#UNSAT", "#SAT", "Total", "paper#UNSAT", "paper#SAT", "paperTotal"],
            rows,
            title=f"Figure 7 — seed corpora (scale={SCALE})",
        ),
    )

    # Shape assertions: every family nonempty except NRA's sat side
    # (the paper's NRA suite has no satisfiable seeds), and the
    # sat/unsat ratio ordering matches the paper per family.
    for family, unsat, sat, *_ in figure7_rows(corpora):
        paper_unsat, paper_sat = PAPER_SEED_COUNTS[family]
        assert unsat > 0 or paper_unsat == 0
        assert sat > 0 or paper_sat == 0
        if paper_sat > paper_unsat:
            assert sat >= unsat
        if paper_unsat > 2 * paper_sat:
            assert unsat > sat
