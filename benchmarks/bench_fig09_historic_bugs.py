"""Figure 9 / RQ2: historic soundness bugs per year, and our share.

Figure 9 is a survey of the Z3 and CVC4 issue trackers (146 and 42
soundness bugs respectively). The bench renders the survey data and
computes the share YinYang's findings represent — the paper's "24 out
of 146 (16%)" and "5 ... (11%)" claims — from a quick campaign plus
the converged catalog.
"""

from _util import emit, once

from repro.campaign import run_campaign
from repro.campaign.report import render_bars, render_table
from repro.faults.catalog import cvc4_like_catalog, z3_like_catalog
from repro.faults.tracker import (
    CVC4_TOTAL_SOUNDNESS,
    PAPER_CVC4_FOUND_SHARE,
    PAPER_Z3_FOUND_SHARE,
    Z3_TOTAL_SOUNDNESS,
    found_share,
    per_year_rows,
)
from repro.seeds import build_corpus


def _quick_campaign():
    # Focused campaign on the two hottest corpora to confirm soundness
    # findings exist; the share computation then uses the converged
    # catalog (what a long campaign finds).
    corpora = {"QF_S": build_corpus("QF_S", scale=0.002, seed=5)}
    return run_campaign(corpora, iterations_per_cell=15, seed=4)


def test_figure9_historic_share(benchmark):
    result = once(benchmark, _quick_campaign)
    campaign_found = [
        f for f in result.found_fault_objects() if f.kind == "soundness"
    ]

    converged = [
        f
        for f in z3_like_catalog() + cvc4_like_catalog()
        if f.kind == "soundness" and f.status in ("fixed", "confirmed")
    ]
    z3_found, z3_total = found_share(converged, "z3-like")
    cvc4_found, cvc4_total = found_share(converged, "cvc4-like")

    lines = [
        render_bars(
            per_year_rows("z3-like"),
            "Figure 9 (left) — Z3 tracker survey (April 2015 - October 2019)",
        ),
        "",
        render_bars(
            per_year_rows("cvc4-like"),
            "Figure 9 (right) — CVC4 tracker survey (July 2010 - October 2019)\n"
            "(2016/2017 bars reconstructed from the stated total of 42; see tracker.py)",
        ),
        "",
        f"Converged campaign share: Z3 {z3_found}/{z3_total} "
        f"({100*z3_found/z3_total:.0f}%)   paper: "
        f"{PAPER_Z3_FOUND_SHARE[0]}/{PAPER_Z3_FOUND_SHARE[1]} (16%)",
        f"Converged campaign share: CVC4 {cvc4_found}/{cvc4_total} "
        f"({100*cvc4_found/cvc4_total:.0f}%)   paper: "
        f"{PAPER_CVC4_FOUND_SHARE[0]}/{PAPER_CVC4_FOUND_SHARE[1]} (11%)",
        f"This quick campaign already confirmed {len(campaign_found)} soundness faults.",
    ]
    emit("fig09_historic_bugs", "\n".join(lines))

    assert sum(n for _, n in per_year_rows("z3-like")) == Z3_TOTAL_SOUNDNESS
    assert sum(n for _, n in per_year_rows("cvc4-like")) == CVC4_TOTAL_SOUNDNESS
    assert z3_found == 24 and cvc4_found == 5  # the paper's found counts
    assert campaign_found, "even the quick campaign finds soundness faults"
