"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures; the
rendered output is printed (visible with ``pytest -s``) and also saved
under ``benchmarks/results/`` so a default captured run still leaves
the artifacts on disk for EXPERIMENTS.md.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name, text):
    """Print a result table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
