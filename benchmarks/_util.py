"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures; the
rendered output is printed (visible with ``pytest -s``) and also saved
under ``benchmarks/results/`` so a default captured run still leaves
the artifacts on disk for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import subprocess

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name, text):
    """Print a result table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def emit_json(name, payload):
    """Persist a machine-readable result under benchmarks/results/.

    The JSON twin of :func:`emit`: the text table stays the
    human-facing artifact, the JSON file is for trend tooling (stable
    keys, sorted, one committed snapshot per benchmark).
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[saved to {path}]")


def git_rev():
    """The repo's current commit hash, or "unknown" outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(__file__),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def smoke():
    """True in CI's bench-smoke stage: tiny runs, no timing assertions,
    and no result-file writes (a smoke run must never clobber the
    committed full-run artifacts)."""
    return bool(os.environ.get("REPRO_BENCH_SMOKE"))


def once(benchmark, fn):
    """Run an expensive experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
