"""Figure 11 / RQ3: code coverage, Benchmark vs YinYang.

For each (logic, SAT/UNSAT) cell, run the instrumented reference solver
on the seed corpus (Benchmark) and then on YinYang-fused formulas for a
budget (YinYang), and compare line / function / branch probe coverage.
The paper's key observation must reproduce: *YinYang consistently
increases the coverage achieved by the Benchmark* (the shaded cells of
Figure 11 are all on the YinYang side).

Probe-hit counts flow through the metrics registry
(``publish_coverage_session`` → ``coverage_counts``), the same
encode/decode pair behind ``yinyang stats`` — this table and the
dashboard share one source of truth for coverage.
"""

from _util import emit, once

from repro.campaign.coverage_study import coverage_table
from repro.campaign.report import render_table
from repro.seeds import build_all_corpora
from repro.solver.solver import ReferenceSolver, SolverConfig

FAMILIES = ("LIA", "QF_LIA", "QF_LRA", "QF_S", "QF_SLIA", "StringFuzz")
SCALE = 0.0015
FUZZ_BUDGET = 8


def _measure():
    corpora = build_all_corpora(scale=SCALE, seed=11)
    solver = ReferenceSolver(SolverConfig.fast())
    return coverage_table(solver, corpora, FAMILIES, fuzz_budget=FUZZ_BUDGET, seed=2)


def test_figure11_coverage(benchmark):
    cells = once(benchmark, _measure)

    rows = []
    dominated = 0
    improved = 0
    for cell in cells:
        bench_l, bench_f, bench_b = cell.benchmark.row()
        yy_l, yy_f, yy_b = cell.yinyang.row()
        rows.append(
            (
                f"{cell.logic}/{cell.oracle.upper()}",
                bench_l,
                bench_f,
                bench_b,
                yy_l,
                yy_f,
                yy_b,
            )
        )
        if cell.yinyang.dominates(cell.benchmark):
            dominated += 1
        if any(v > 0 for v in cell.improvement().values()):
            improved += 1

    text = "\n".join(
        [
            render_table(
                ["Cell", "Bench l", "Bench f", "Bench b", "YY l", "YY f", "YY b"],
                rows,
                "Figure 11 — probe coverage (%): Benchmark vs YinYang per cell",
            ),
            "",
            f"YinYang dominates the Benchmark in {dominated}/{len(cells)} cells "
            f"and strictly improves in {improved}/{len(cells)} "
            "(paper: YinYang shaded in every cell).",
        ]
    )
    emit("fig11_coverage", text)

    assert cells, "no cells measured"
    assert dominated == len(cells), "YinYang must never lose coverage"
    assert improved >= len(cells) - 2, "YinYang must add coverage almost everywhere"
