"""Figure 13: the six assorted bug samples, replayed.

Each of the paper's reduced bug-triggering formulas is transcribed
verbatim (see :mod:`repro.faults.paper_samples`) and run against the
simulated solver the paper blamed:

- the five soundness samples must make the buggy solver answer ``sat``
  on an unsatisfiable formula, and
- the crash sample (13f) must make the z3-like solver die with a
  segmentation-fault signature,

while the reference solver never *contradicts* the ground truth
(it proves the arithmetic sample unsat and answers ``unknown`` on the
reduced string instances, whose refutations exceed the bounded search's
completeness certificate — documented in EXPERIMENTS.md).
"""

from _util import emit, once

from repro.campaign.report import render_table
from repro.cli import make_solver
from repro.faults.paper_samples import FIGURE_13
from repro.smtlib.parser import parse_script
from repro.solver.result import SolverCrash
from repro.solver.solver import ReferenceSolver, SolverConfig


def _replay():
    config = SolverConfig.thorough()
    config.timeout_seconds = 30.0  # cap per check; unknowns arrive sooner
    reference = ReferenceSolver(config)
    buggy = {name: make_solver(name) for name in ("z3-like", "cvc4-like")}
    rows = []
    outcomes = {}
    for sample in FIGURE_13:
        script = parse_script(sample.smt2)
        solver = buggy[sample.solver]
        try:
            buggy_answer = str(solver.check_script(script).result)
        except SolverCrash:
            buggy_answer = "crash"
        ref_answer = str(reference.check_script(script).result)
        rows.append(
            (
                sample.figure,
                sample.solver,
                sample.logic,
                sample.oracle,
                buggy_answer,
                ref_answer,
            )
        )
        outcomes[sample.figure] = (buggy_answer, ref_answer, sample)
    return rows, outcomes


def test_figure13_bug_samples(benchmark):
    rows, outcomes = once(benchmark, _replay)
    text = render_table(
        ["Fig", "Solver", "Logic", "Truth", "Buggy says", "Reference says"],
        rows,
        "Figure 13 — the paper's reduced bug samples, replayed",
    )
    emit("fig13_bug_samples", text)

    for figure, (buggy_answer, ref_answer, sample) in outcomes.items():
        if sample.kind == "soundness":
            assert buggy_answer == "sat", f"{figure}: soundness bug must reproduce"
            assert ref_answer != "sat", f"{figure}: the reference must not agree"
        else:
            assert buggy_answer == "crash", f"{figure}: crash bug must reproduce"
            assert ref_answer in ("unsat", "unknown"), f"{figure}: reference is safe"

    # 13c hinges on division-at-zero semantics; the reference solver
    # decides it outright. The reduced string samples exceed the bounded
    # search's completeness certificate and stay unknown — honest
    # incompleteness, never agreement with the wrong 'sat'.
    assert outcomes["13c"][1] == "unsat"
