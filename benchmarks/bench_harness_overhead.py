"""Harness hardening overhead: fused-formulas/sec with and without
GuardedSolver.

The containment layer (watchdog thread handoff, retry bookkeeping,
breaker counters) sits on the hot path of every check, so it must be
nearly free: the budget is **< 5%** overhead versus the unguarded
check. Each fused script is timed back-to-back through both arms
(alternating which goes first), and the overhead is the median of the
per-script time ratios — robust against the wall-clock jitter that
dominates any totals-based comparison on shared hardware.
"""

import random
import statistics
import time

from _util import emit, once

from repro.core.config import YinYangConfig
from repro.core.yinyang import YinYang
from repro.robustness import ResiliencePolicy
from repro.robustness.guard import GuardedSolver
from repro.seeds import build_corpus
from repro.solver.solver import ReferenceSolver, SolverConfig

OVERHEAD_BUDGET = 0.05
SCRIPTS = 30


def _fused_scripts(seeds):
    """A fixed set of fused formulas, shared verbatim by both arms."""
    from repro.errors import FusionError

    tool = YinYang(ReferenceSolver(SolverConfig.fast()), YinYangConfig(seed=0))
    rng = random.Random(7)
    scripts = []
    while len(scripts) < SCRIPTS:
        i, j = rng.randrange(len(seeds)), rng.randrange(len(seeds))
        try:
            result = tool.fuse_once("sat", seeds[i], seeds[j], seed=len(scripts))
        except FusionError:
            continue
        scripts.append(result.script)
    return scripts


def test_guarded_solver_overhead(benchmark):
    corpus = build_corpus("QF_LIA", scale=0.004, seed=21)
    seeds = [s.script for s in corpus.sat_seeds]
    solver = ReferenceSolver(SolverConfig.fast())
    policy = ResiliencePolicy(check_timeout=30.0, retries=2, quarantine_after=10)
    guard = GuardedSolver(solver, policy)

    def measure():
        scripts = _fused_scripts(seeds)
        for script in scripts[:3]:  # warmup: caches, helper thread spin-up
            solver.check_script(script)
            guard.check_script(script)
        direct_times, guarded_times = [], []
        for index, script in enumerate(scripts):
            arms = [("direct", solver), ("guard", guard)]
            if index % 2:
                arms.reverse()
            for label, arm in arms:
                start = time.perf_counter()
                arm.check_script(script)
                elapsed = time.perf_counter() - start
                (direct_times if label == "direct" else guarded_times).append(elapsed)
        return direct_times, guarded_times

    direct_times, guarded_times = once(benchmark, measure)
    ratios = [g / d for g, d in zip(guarded_times, direct_times)]
    overhead = statistics.median(ratios) - 1.0
    plain_rate = len(direct_times) / sum(direct_times)
    guarded_rate = len(guarded_times) / sum(guarded_times)

    emit(
        "harness_overhead",
        (
            "Harness hardening overhead — fused formulas checked per second\n"
            f"unguarded      : {plain_rate:,.1f}/s\n"
            f"GuardedSolver  : {guarded_rate:,.1f}/s "
            "(watchdog deadline + retries + breaker)\n"
            f"overhead       : {overhead:+.1%} median per-script "
            f"(budget < {OVERHEAD_BUDGET:.0%})\n"
        ),
    )
    assert overhead < OVERHEAD_BUDGET


def test_supervised_loop_overhead(benchmark):
    """Supervised-lease loop vs bare shard loop, same worker, same work.

    The supervised path adds, per iteration: one heartbeat write
    (tmpfile + atomic rename), one progress-log append (flocked write +
    flush), and a per-index ``run_iterations`` call merged at the end.
    All of it must stay inside the same **< 5%** budget as the guard —
    process supervision is pointless if nobody can afford to leave it
    on. Measured in-process (the pool's spawn cost is identical in both
    arms and would only add noise): alternating bare/leased shard runs
    over identical iterations, overhead = median per-round time ratio.
    """
    import os
    import tempfile
    from dataclasses import replace as dc_replace

    from repro.campaign.runner import deterministic_solvers
    from repro.core.parallel import ShardTask, WorkerSpec, _init_worker, _run_shard
    from repro.core.parallel import serialize_seeds

    corpus = build_corpus("QF_S", scale=0.0015, seed=5)
    texts, logics = serialize_seeds(corpus.by_oracle("sat"))
    spec = WorkerSpec(
        solver_factory=deterministic_solvers,
        config=YinYangConfig(seed=6),
    )
    _init_worker(spec)
    base = ShardTask(
        oracle="sat",
        seed_texts=texts,
        logics=logics,
        iterations=12,
        shard=0,
        of=1,
        seed=6,
        strategy="fusion",
    )
    rounds = 10

    def measure():
        with tempfile.TemporaryDirectory() as tmp:
            _run_shard(base)  # warmup: parse cache, strategy prepare
            bare_times, leased_times = [], []
            for index in range(rounds):
                leased = dc_replace(
                    base,
                    lease_id=index + 1,
                    heartbeat_dir=tmp,
                    # A fresh log per round: replaying checkpoints would
                    # measure skipping the work, not doing it.
                    progress_path=os.path.join(tmp, f"round-{index}.jsonl"),
                )
                arms = [("bare", base), ("leased", leased)]
                if index % 2:
                    arms.reverse()
                for label, task in arms:
                    start = time.perf_counter()
                    _run_shard(task)
                    elapsed = time.perf_counter() - start
                    (bare_times if label == "bare" else leased_times).append(elapsed)
        return bare_times, leased_times

    bare_times, leased_times = once(benchmark, measure)
    ratios = [s / b for s, b in zip(leased_times, bare_times)]
    overhead = statistics.median(ratios) - 1.0
    bare_rate = rounds * base.iterations / sum(bare_times)
    leased_rate = rounds * base.iterations / sum(leased_times)

    emit(
        "supervised_pool_overhead",
        (
            "Supervised-lease loop overhead — iterations per second, one worker\n"
            f"bare shard loop : {bare_rate:,.1f}/s\n"
            f"supervised lease: {leased_rate:,.1f}/s "
            "(heartbeat + progress checkpoint + per-index loop)\n"
            f"overhead        : {overhead:+.1%} median per-round "
            f"(budget < {OVERHEAD_BUDGET:.0%})\n"
        ),
    )
    assert overhead < OVERHEAD_BUDGET


def test_watchdog_handoff_latency(benchmark):
    """Microbenchmark: the raw cost of one watchdog-guarded no-op check."""
    from repro.robustness.guard import GuardedSolver
    from repro.smtlib.parser import parse_script
    from repro.solver.result import CheckOutcome, SolverResult

    script = parse_script("(declare-fun x () Int)(assert (> x 0))(check-sat)")

    class NullSolver:
        name = "null"

        def check_script(self, inner):
            return CheckOutcome(SolverResult.SAT)

    guard = GuardedSolver(NullSolver(), ResiliencePolicy(check_timeout=30.0))
    guard.check_script(script)  # spin up the helper thread once

    benchmark(guard.check_script, script)
    mean = benchmark.stats.stats.mean
    emit(
        "harness_watchdog_latency",
        (
            "Watchdog handoff latency (no-op check through the helper thread)\n"
            f"mean: {mean * 1e6:,.1f} µs/check\n"
        ),
    )
    # Sanity: handoff stays far below a single real solver check (~ms).
    assert mean < 0.005
