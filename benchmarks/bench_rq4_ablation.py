"""RQ4 (retrigger half) and design-choice ablations.

The paper re-ran ConcatFuzz on the ancestor seeds of 50 reported bugs:
only 5/50 retriggered, showing the variable fusion/inversion step is
necessary. We replay that protocol: collect bug-triggering fusions from
a campaign, then feed the *same ancestor seed pairs* through ConcatFuzz
and count how many still expose their bug.

Also benchmarks the DESIGN.md ablations: fusion with substitution
probability 0 (concatenation plus fusion constraints but no inversion
terms in the seed bodies) finds fewer faults than the default.
"""

from _util import emit, once

from repro.core.checker import retriggers_bug
from repro.core.concatfuzz import concat_scripts
from repro.core.config import FusionConfig, YinYangConfig
from repro.core.yinyang import YinYang
from repro.campaign.runner import default_solvers
from repro.seeds import build_corpus


def _collect_bugs(solver, corpora_specs, iterations):
    tool = YinYang(solver, YinYangConfig(seed=17))
    bugs = []
    seed_lists = {}
    for family, oracle, scale in corpora_specs:
        corpus = build_corpus(family, scale=scale, seed=17)
        seeds = corpus.by_oracle(oracle)
        seed_lists[(family, oracle)] = seeds
        report = tool.test(oracle, seeds, iterations=iterations)
        for bug in report.bugs:
            bugs.append((family, oracle, bug))
    return bugs, seed_lists


def test_rq4_concatfuzz_retrigger(benchmark):
    z3 = default_solvers()[0]
    specs = [
        ("QF_S", "unsat", 0.002),
        ("QF_S", "sat", 0.001),
        ("LRA", "unsat", 0.003),
        ("QF_LIA", "sat", 0.002),
    ]
    bugs, seed_lists = once(
        benchmark, lambda: _collect_bugs(z3, specs, iterations=18)
    )
    sample = [b for b in bugs if b[2].kind in ("soundness", "crash")][:50]
    assert sample, "campaign found no bugs to ablate"

    retriggered = 0
    for family, oracle, bug in sample:
        seeds = seed_lists[(family, oracle)]
        i, j = bug.seed_indices
        concatenated = concat_scripts(oracle, seeds[i].script, seeds[j].script)
        if retriggers_bug(z3, concatenated, oracle, bug.kind):
            retriggered += 1

    fraction = retriggered / len(sample)
    emit(
        "rq4_retrigger",
        (
            "RQ4 — ConcatFuzz on the ancestor seeds of found bugs\n"
            f"retriggered: {retriggered}/{len(sample)} ({100*fraction:.0f}%)\n"
            "paper: 5/50 (10%) — concatenation alone misses most bugs\n"
        ),
    )
    assert fraction <= 0.5, "concatenation alone must miss most bugs"


def test_ablation_substitution_probability(benchmark):
    """DESIGN.md ablation: inversion substitution probability 0 vs 0.5.

    SAT fusion isolates the effect: with probability 0 no inversion
    term ever enters the formula and SAT fusion degenerates to plain
    conjunction (ConcatFuzz with fresh z declarations), so the
    structure-triggered faults go quiet.
    """
    z3 = default_solvers()[0]
    corpus = build_corpus("QF_S", scale=0.0015, seed=23)

    def run(probability):
        config = YinYangConfig(
            fusion=FusionConfig(substitution_probability=probability), seed=23
        )
        tool = YinYang(z3, config)
        report = tool.test("sat", corpus.sat_seeds, iterations=25)
        distinct = set()
        for bug in report.bugs:
            distinct.add((bug.kind, bug.note))
        return len(distinct)

    with_inversion = once(benchmark, lambda: run(0.5))
    without_inversion = run(0.0)
    emit(
        "ablation_substitution",
        (
            "Ablation — distinct bug signatures in 25 SAT-fusion rounds (QF_S)\n"
            f"substitution probability 0.5 (default): {with_inversion}\n"
            f"substitution probability 0.0 (no inversion terms): {without_inversion}\n"
            "With no inversion terms SAT fusion degenerates to concatenation,\n"
            "so the structure-keyed defects stay hidden (the RQ4 mechanism).\n"
        ),
    )
    assert with_inversion > without_inversion, "inversion must drive bug yield"
