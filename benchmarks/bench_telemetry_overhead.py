"""Telemetry overhead: campaign iterations/sec with and without the
observability layer.

The metrics registry, the NULL_TELEMETRY no-op path and the span tracer
all sit on the YinYang hot path, so they must be nearly free: the
budget is **< 5%** overhead for a fully traced-and-metered run versus
an uninstrumented one (and the untelemetered path itself must be
indistinguishable from the pre-observability code). Each arm runs the
same deterministic cell batch back-to-back (alternating which goes
first), and the overhead is the median of the per-batch time ratios —
robust against the wall-clock jitter that dominates totals on shared
hardware.

A companion microbenchmark pins the per-call cost of the no-op surface
(count + null span), the quantity multiplied by every iteration of a
months-long campaign.
"""

import statistics
import time

from _util import emit, once

from repro.core.config import YinYangConfig
from repro.core.yinyang import YinYang
from repro.observability.telemetry import NULL_TELEMETRY, Telemetry
from repro.seeds import build_corpus
from repro.solver.solver import ReferenceSolver, SolverConfig

OVERHEAD_BUDGET = 0.05
BATCHES = 14
ITERATIONS_PER_BATCH = 12


def _run_batch(telemetry):
    """One deterministic YinYang cell, instrumented or not."""
    corpus = build_corpus("QF_LIA", scale=0.003, seed=5)
    seeds = corpus.by_oracle("sat")
    tool = YinYang(
        ReferenceSolver(SolverConfig.fast()),
        YinYangConfig(seed=3),
        telemetry=telemetry,
    )
    scripts = [s.script for s in seeds]
    logics = [s.logic for s in seeds]
    tool.run_iterations("sat", scripts, logics, range(ITERATIONS_PER_BATCH))


def test_telemetry_overhead(benchmark):
    def measure():
        # Warm up both arms: parse caches, intern tables, histograms.
        _run_batch(None)
        _run_batch(Telemetry(trace=True, profile=True))
        bare_times, traced_times = [], []
        for index in range(BATCHES):
            arms = [("bare", None), ("traced", Telemetry(trace=True, profile=True))]
            if index % 2:
                arms.reverse()
            for label, telemetry in arms:
                start = time.perf_counter()
                _run_batch(telemetry)
                elapsed = time.perf_counter() - start
                (bare_times if label == "bare" else traced_times).append(elapsed)
        return bare_times, traced_times

    bare_times, traced_times = once(benchmark, measure)
    ratios = [t / b for t, b in zip(traced_times, bare_times)]
    overhead = statistics.median(ratios) - 1.0
    bare_rate = BATCHES * ITERATIONS_PER_BATCH / sum(bare_times)
    traced_rate = BATCHES * ITERATIONS_PER_BATCH / sum(traced_times)

    emit(
        "telemetry_overhead",
        (
            "Telemetry overhead — YinYang iterations per second\n"
            f"no telemetry      : {bare_rate:,.1f}/s\n"
            f"metrics + tracing : {traced_rate:,.1f}/s "
            "(counters, phase spans, profile sampling)\n"
            f"overhead          : {overhead:+.1%} median per-batch "
            f"(budget < {OVERHEAD_BUDGET:.0%})\n"
        ),
    )
    assert overhead < OVERHEAD_BUDGET


def test_null_telemetry_call_cost(benchmark):
    """Microbenchmark: one iteration's worth of no-op instrumentation.

    This is what every *untelemetered* campaign pays per iteration for
    the observability hooks existing at all: a handful of no-op method
    calls and shared null spans. It must stay millions/sec — three
    orders of magnitude below the >=140µs cost of a real iteration."""
    tel = NULL_TELEMETRY

    def one_iteration_of_hooks():
        tel.count("iterations")
        with tel.phase("seed_pick"):
            pass
        with tel.phase("fuse"):
            pass
        tel.count("fused")
        with tel.phase("solve"):
            pass
        with tel.phase("oracle_check"):
            pass
        tel.count("checks")

    benchmark(one_iteration_of_hooks)
    mean = benchmark.stats.stats.mean
    emit(
        "telemetry_null_cost",
        (
            "NULL_TELEMETRY per-iteration hook cost (counts + null spans)\n"
            f"mean: {mean * 1e9:,.0f} ns/iteration "
            f"({1.0 / mean:,.0f} iterations/s)\n"
        ),
    )
    # Generous bound: even a loaded CI box does no-op calls in < 10µs.
    assert mean < 1e-5
