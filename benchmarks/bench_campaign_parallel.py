"""Campaign execution modes head-to-head: serial, thread, process, tcp.

The sharded-execution work promises two things: (1) sharding never
changes what the campaign reports, and (2) process mode buys real
throughput on multi-core machines, where thread mode is GIL-bound for
the pure-Python solvers under test. The tcp fleet adds a third claim:
(3) moving leases over sockets instead of executor pipes costs only a
constant per-campaign overhead (worker spawn + handshake + frame
codec), not a per-iteration tax. This benchmark runs the identical
deterministic campaign through all four modes, asserts the bug records
match record-for-record, and reports throughput per mode.

Honesty note: the speedup column is only meaningful on multi-core
hardware. On a single-CPU box (``os.cpu_count() == 1``) process and
tcp modes *cannot* beat serial — the workers time-slice one core and
pay spawn, pickling and framing overhead on top — so the table records
the core count and the assertion is on correctness, not speed. The
committed ``BENCH_distributed.json`` snapshot carries the same caveat
machine-readably (``cpu_cores``).
"""

import json
import os
import platform
import time

from _util import emit, emit_json, git_rev, once, smoke

from repro.campaign.runner import deterministic_solvers, run_campaign
from repro.robustness.journal import serialize_bug_record
from repro.seeds import build_corpus

WORKERS = 4
CAMPAIGN = dict(
    iterations_per_cell=4 if smoke() else 10,
    seed=3,
    performance_threshold=None,
    solver_factory=deterministic_solvers,
)

MODES = (
    ("serial", 1),
    ("thread", WORKERS),
    ("process", WORKERS),
    ("tcp", WORKERS),
)


def _records(result):
    return [json.dumps(serialize_bug_record(r), sort_keys=True) for r in result.records]


def test_campaign_mode_throughput(benchmark):
    corpora = {
        "QF_LIA": build_corpus("QF_LIA", scale=0.003, seed=5),
        "QF_S": build_corpus("QF_S", scale=0.0015, seed=5),
    }

    def measure():
        rows = []
        baseline = None
        for mode, workers in MODES:
            start = time.perf_counter()
            result = run_campaign(corpora, mode=mode, workers=workers, **CAMPAIGN)
            elapsed = time.perf_counter() - start
            iterations = sum(r.iterations for r in result.reports.values())
            if baseline is None:
                baseline = _records(result)
            else:
                assert _records(result) == baseline, f"{mode} changed the bug records"
            rows.append((mode, workers, iterations, elapsed, iterations / elapsed))
        return rows

    rows = once(benchmark, measure)
    serial_rate = rows[0][4]
    lines = [
        f"Campaign throughput by execution mode ({os.cpu_count()} CPU core(s))",
        "",
        f"{'mode':<9}{'workers':>8}{'iterations':>12}{'seconds':>10}"
        f"{'iters/s':>10}{'vs serial':>11}",
    ]
    for mode, workers, iterations, elapsed, rate in rows:
        lines.append(
            f"{mode:<9}{workers:>8}{iterations:>12}{elapsed:>10.1f}"
            f"{rate:>10.2f}{rate / serial_rate:>10.2f}x"
        )
    lines += [
        "",
        "Bug records identical across all four modes (asserted).",
        "Speedup requires multiple cores: on a 1-core host, process and",
        "tcp modes add spawn + pickling/framing overhead with no",
        "parallelism to pay for it; the tcp row then measures the fleet",
        "transport's constant cost, not its scaling.",
    ]
    if smoke():
        # Smoke runs exist to exercise the rows in CI, not to time
        # them; skipping emit keeps the committed artifacts authentic.
        return
    emit("campaign_parallel", "\n".join(lines))
    emit_json(
        "BENCH_distributed",
        {
            "benchmark": "campaign_mode_throughput",
            "iterations_per_cell": CAMPAIGN["iterations_per_cell"],
            "seed": CAMPAIGN["seed"],
            "workers": WORKERS,
            "cpu_cores": os.cpu_count(),
            "caveat": (
                "throughput ratios are only meaningful when cpu_cores > "
                "workers; on a 1-core host the parallel rows measure "
                "transport overhead, not scaling"
            ),
            "host": platform.node(),
            "git_rev": git_rev(),
            "modes": [
                {
                    "mode": mode,
                    "workers": workers,
                    "iterations": iterations,
                    "seconds": round(elapsed, 3),
                    "iters_per_s": round(rate, 3),
                    "vs_serial": round(rate / serial_rate, 3),
                }
                for mode, workers, iterations, elapsed, rate in rows
            ],
        },
    )
