"""Figure 12 / RQ4 (coverage half): ConcatFuzz vs YinYang vs Benchmark.

Average probe coverage over all logics for the three workloads. The
paper's shape: both fuzzers beat the plain benchmark, and YinYang's
average dominates ConcatFuzz's — the variable fusion/inversion step,
not mere concatenation, reaches the extra code.
"""

from _util import emit, once

from repro.campaign.coverage_study import coverage_table, figure12_averages
from repro.campaign.report import render_table
from repro.seeds import build_all_corpora
from repro.solver.solver import ReferenceSolver, SolverConfig

FAMILIES = ("QF_LIA", "QF_S", "QF_SLIA")
SCALE = 0.0015
FUZZ_BUDGET = 8


def _measure():
    corpora = build_all_corpora(scale=SCALE, seed=13)
    solver = ReferenceSolver(SolverConfig.fast())
    return coverage_table(
        solver, corpora, FAMILIES, fuzz_budget=FUZZ_BUDGET, seed=5, with_concatfuzz=True
    )


def test_figure12_concatfuzz_coverage(benchmark):
    cells = once(benchmark, _measure)
    bench, concat, yinyang = figure12_averages(cells)

    rows = [
        ("Benchmark", *bench.row()),
        ("ConcatFuzz", *concat.row()),
        ("YinYang", *yinyang.row()),
    ]
    text = render_table(
        ["Workload", "lines %", "functions %", "branches %"],
        rows,
        "Figure 12 — average coverage over all logics",
    )
    emit("fig12_concatfuzz", text)

    assert yinyang.dominates(bench)
    assert concat.dominates(bench) or concat.line >= bench.line
    assert yinyang.dominates(concat), "fusion must beat plain concatenation"
    assert yinyang.line > concat.line, "the line-coverage gap drives the bug gap"
