"""Strategy throughput: fusion (full and triaged) vs. concatfuzz vs.
opfuzz iterations/s.

All rows run the identical loop (same solvers, seeds, iteration
count, serial mode), so the deltas measure what each workload costs
end to end: mutation plus solving the mutants it produces. That
second part dominates. Fusion's variable fusion introduces nonlinear
definitions that historically burned the deterministic solvers' full
budgets at ~0.4 iter/s; the solver-side fast paths (definition
elimination, model guessing, incremental branch & bound, QuickXplain
core shrinking) and the triage tier policy reclaim that wall clock.
The ``fusion+triage`` row runs the same campaign with the default
:class:`~repro.campaign.triage.TriagePolicy`; the assertion at the
bottom pins the headline claim — triaged fusion sustains at least ten
times the 0.4 iter/s the pre-triage pipeline recorded — so a
regression in either the solver fast paths or the tier routing fails
the benchmark, not just a number in a text file.
"""

import time

from _util import emit, once

from repro.campaign.runner import deterministic_solvers
from repro.campaign.triage import TriagePolicy
from repro.core.config import YinYangConfig
from repro.core.yinyang import YinYang
from repro.seeds import build_corpus
from repro.strategies import make_strategy

ITERATIONS = 60
SEED = 11

#: The fusion throughput the pre-triage pipeline recorded on this
#: exact campaign (60 iterations, QF_LIA sat, two deterministic
#: solvers, serial). The triaged row must sustain >= 10x this.
PRE_TRIAGE_BASELINE = 0.4


def _run_strategy(name, seeds, triage=None):
    solvers = deterministic_solvers()
    tool = YinYang(
        solvers,
        YinYangConfig(seed=SEED, triage=triage),
        performance_threshold=None,
        strategy=make_strategy(name),
    )
    began = time.perf_counter()
    report = tool.test("sat", seeds, iterations=ITERATIONS)
    elapsed = time.perf_counter() - began
    return report, elapsed


def _campaign():
    corpus = build_corpus("QF_LIA", scale=0.003, seed=SEED)
    seeds = corpus.by_oracle("sat")
    rows = {}
    for name in ("fusion", "concatfuzz", "opfuzz"):
        report, elapsed = _run_strategy(name, seeds)
        rows[name] = (report, elapsed)
    report, elapsed = _run_strategy("fusion", seeds, triage=TriagePolicy())
    rows["fusion+triage"] = (report, elapsed)
    return rows


def test_strategy_throughput(benchmark):
    rows = once(benchmark, _campaign)
    fusion_rate = ITERATIONS / rows["fusion"][1]
    lines = [
        "Strategy throughput — identical loop, solvers and seeds "
        f"({ITERATIONS} iterations, QF_LIA sat, serial)",
        f"{'strategy':<14} {'iter/s':>8} {'vs fusion':>10} "
        f"{'mutants':>8} {'failed':>7} {'bugs':>5} {'unknown':>8}",
    ]
    for name, (report, elapsed) in rows.items():
        rate = ITERATIONS / elapsed
        lines.append(
            f"{name:<14} {rate:>8.1f} {rate / fusion_rate:>9.2f}x "
            f"{report.fused:>8} {report.fusion_failures:>7} "
            f"{len(report.bugs):>5} {report.unknowns:>8}"
        )
    triage_rate = ITERATIONS / rows["fusion+triage"][1]
    lines.append(
        "solve time dominates. The solver fast paths (definition "
        "elimination, model guess, incremental branch & bound, "
        "QuickXplain cores) lifted full-budget fusion well above the "
        f"{PRE_TRIAGE_BASELINE} iter/s it once recorded; triage "
        "additionally fail-fasts the budget-burning nonlinear mutants "
        f"(fusion+triage: {triage_rate:.1f} iter/s, "
        f"{triage_rate / PRE_TRIAGE_BASELINE:.0f}x the pre-triage "
        "pipeline). concatfuzz/opfuzz mutants stay as easy as their "
        "seeds — opfuzz's extra reference solve per mutant "
        "(differential oracle) is cheap on those."
    )
    emit("strategy_throughput", "\n".join(lines))
    for name, (report, _elapsed) in rows.items():
        assert report.iterations == ITERATIONS, name
        assert report.fused > 0, name
    # The headline acceptance bar: triaged fusion sustains >= 10x the
    # pre-triage pipeline's recorded throughput.
    assert triage_rate >= 10 * PRE_TRIAGE_BASELINE, (
        f"triaged fusion throughput regressed: {triage_rate:.2f} iter/s "
        f"< 10x the {PRE_TRIAGE_BASELINE} iter/s pre-triage baseline"
    )
    # Triage must not change what the campaign reports as bugs.
    assert len(rows["fusion+triage"][0].bugs) == len(rows["fusion"][0].bugs)
