"""Strategy throughput: fusion vs. concatfuzz vs. opfuzz iterations/s.

All three strategies run the identical loop (same solvers, seeds,
iteration count, serial mode), so the deltas measure what each
workload costs end to end: mutation plus solving the mutants it
produces. That second part dominates. Fusion's variable fusion
introduces nonlinear definitions that burn the deterministic solvers'
budgets (most iterations end undecided), while concatfuzz and opfuzz
mutants stay as easy as their seeds — even opfuzz's extra reference
solve per mutant (for its differential oracle) is cheap on those.
The table exists to keep those relative costs visible as the pipeline
evolves: a regression in the generic loop shows up in every row.
"""

import time

from _util import emit, once

from repro.campaign.runner import deterministic_solvers
from repro.core.config import YinYangConfig
from repro.core.yinyang import YinYang
from repro.seeds import build_corpus
from repro.strategies import make_strategy

ITERATIONS = 60
SEED = 11


def _run_strategy(name, seeds):
    solvers = deterministic_solvers()
    tool = YinYang(
        solvers,
        YinYangConfig(seed=SEED),
        performance_threshold=None,
        strategy=make_strategy(name),
    )
    began = time.perf_counter()
    report = tool.test("sat", seeds, iterations=ITERATIONS)
    elapsed = time.perf_counter() - began
    return report, elapsed


def _campaign():
    corpus = build_corpus("QF_LIA", scale=0.003, seed=SEED)
    seeds = corpus.by_oracle("sat")
    rows = {}
    for name in ("fusion", "concatfuzz", "opfuzz"):
        report, elapsed = _run_strategy(name, seeds)
        rows[name] = (report, elapsed)
    return rows


def test_strategy_throughput(benchmark):
    rows = once(benchmark, _campaign)
    fusion_rate = ITERATIONS / rows["fusion"][1]
    lines = [
        "Strategy throughput — identical loop, solvers and seeds "
        f"({ITERATIONS} iterations, QF_LIA sat, serial)",
        f"{'strategy':<12} {'iter/s':>8} {'vs fusion':>10} "
        f"{'mutants':>8} {'failed':>7} {'bugs':>5} {'unknown':>8}",
    ]
    for name, (report, elapsed) in rows.items():
        rate = ITERATIONS / elapsed
        lines.append(
            f"{name:<12} {rate:>8.1f} {rate / fusion_rate:>9.2f}x "
            f"{report.fused:>8} {report.fusion_failures:>7} "
            f"{len(report.bugs):>5} {report.unknowns:>8}"
        )
    lines.append(
        "solve time dominates: fusion's variable fusion yields "
        "nonlinear mutants that exhaust the deterministic solvers' "
        "budgets (see unknown), while concatfuzz/opfuzz mutants stay "
        "as easy as their seeds — opfuzz's extra reference solve per "
        "mutant (differential oracle) is cheap on those."
    )
    emit("strategy_throughput", "\n".join(lines))
    for name, (report, _elapsed) in rows.items():
        assert report.iterations == ITERATIONS, name
        assert report.fused > 0, name
