"""Strategy throughput: fusion (full, triaged, incremental) vs.
concatfuzz vs. opfuzz iterations/s.

All rows run the identical loop (same solvers, seeds, iteration
count, serial mode), so the deltas measure what each workload costs
end to end: mutation plus solving the mutants it produces. That
second part dominates. Fusion's variable fusion introduces nonlinear
definitions that historically burned the deterministic solvers' full
budgets at ~0.4 iter/s; the solver-side fast paths (definition
elimination, model guessing, incremental branch & bound, QuickXplain
core shrinking) and the triage tier policy reclaim that wall clock.
The ``fusion+triage`` row runs the same campaign with the default
:class:`~repro.campaign.triage.TriagePolicy`; the
``fusion+triage+incremental`` row additionally turns on per-cell
solver sessions (:mod:`repro.solver.session`) — warm SAT prototypes,
theory-lemma memoization, per-iteration outcome dedup. The assertions
at the bottom pin both headline claims: triaged fusion sustains at
least ten times the 0.4 iter/s pre-triage pipeline, and incremental
sessions at least double the ~7 iter/s triaged baseline — so a
regression in the solver fast paths, the tier routing or the session
reuse fails the benchmark, not just a number in a text file.

Set ``REPRO_BENCH_SMOKE=1`` (CI's bench-smoke stage) for a tiny run
that exercises every row but skips the timing assertions and leaves
the committed result artifacts untouched.
"""

import platform
import time

from _util import emit, emit_json, git_rev, once, smoke

from repro.campaign.runner import deterministic_bv_solvers, deterministic_solvers
from repro.campaign.triage import TriagePolicy
from repro.core.config import YinYangConfig
from repro.core.yinyang import YinYang
from repro.seeds import build_corpus
from repro.solver.session import SessionConfig
from repro.strategies import make_strategy

ITERATIONS = 6 if smoke() else 60
SEED = 11

#: The fusion throughput the pre-triage pipeline recorded on this
#: exact campaign (60 iterations, QF_LIA sat, two deterministic
#: solvers, serial). The triaged row must sustain >= 10x this.
PRE_TRIAGE_BASELINE = 0.4

#: The triaged-fusion throughput PR 7 recorded on this campaign. The
#: incremental row must sustain >= 2x this.
TRIAGED_BASELINE = 7.0


def _run_strategy(name, seeds, triage=None, incremental=None, solvers=None):
    solvers = solvers or deterministic_solvers()
    tool = YinYang(
        solvers,
        YinYangConfig(seed=SEED, triage=triage, incremental=incremental),
        performance_threshold=None,
        strategy=make_strategy(name),
    )
    began = time.perf_counter()
    report = tool.test("sat", seeds, iterations=ITERATIONS)
    elapsed = time.perf_counter() - began
    return report, elapsed


def _campaign():
    corpus = build_corpus("QF_LIA", scale=0.003, seed=SEED)
    seeds = corpus.by_oracle("sat")
    rows = {}
    for name in ("fusion", "concatfuzz", "opfuzz"):
        report, elapsed = _run_strategy(name, seeds)
        rows[name] = (report, elapsed)
    report, elapsed = _run_strategy("fusion", seeds, triage=TriagePolicy())
    rows["fusion+triage"] = (report, elapsed)
    report, elapsed = _run_strategy(
        "fusion", seeds, triage=TriagePolicy(), incremental=SessionConfig()
    )
    rows["fusion+triage+incremental"] = (report, elapsed)
    # The pluggable-theory row: the identical fusion loop over QF_BV
    # seeds, solved by eager bit-blasting onto the same SAT core. Rates
    # compare against arithmetic fusion, so this row tracks what the
    # bit-blasted backend costs relative to the arithmetic fast paths.
    bv_corpus = build_corpus("QF_BV", scale=0.02, seed=SEED)
    report, elapsed = _run_strategy(
        "fusion",
        bv_corpus.by_oracle("sat"),
        triage=TriagePolicy(),
        incremental=SessionConfig(),
        solvers=deterministic_bv_solvers(),
    )
    rows["fusion@QF_BV"] = (report, elapsed)
    return rows


def test_strategy_throughput(benchmark):
    rows = once(benchmark, _campaign)
    fusion_rate = ITERATIONS / rows["fusion"][1]
    name_width = max(len(name) for name in rows)
    lines = [
        "Strategy throughput — identical loop, solvers and seeds "
        f"({ITERATIONS} iterations, QF_LIA sat, serial)",
        f"{'strategy':<{name_width}} {'iter/s':>8} {'vs fusion':>10} "
        f"{'mutants':>8} {'failed':>7} {'bugs':>5} {'unknown':>8}",
    ]
    for name, (report, elapsed) in rows.items():
        rate = ITERATIONS / elapsed
        lines.append(
            f"{name:<{name_width}} {rate:>8.1f} {rate / fusion_rate:>9.2f}x "
            f"{report.fused:>8} {report.fusion_failures:>7} "
            f"{len(report.bugs):>5} {report.unknowns:>8}"
        )
    triage_rate = ITERATIONS / rows["fusion+triage"][1]
    incremental_rate = ITERATIONS / rows["fusion+triage+incremental"][1]
    lines.append(
        "solve time dominates. The solver fast paths (definition "
        "elimination, model guess, incremental branch & bound, "
        "QuickXplain cores) lifted full-budget fusion well above the "
        f"{PRE_TRIAGE_BASELINE} iter/s it once recorded; triage "
        "additionally fail-fasts the budget-burning nonlinear mutants "
        f"(fusion+triage: {triage_rate:.1f} iter/s, "
        f"{triage_rate / PRE_TRIAGE_BASELINE:.0f}x the pre-triage "
        "pipeline), and per-cell solver sessions reuse the seed "
        "encoding and theory lemmas across the mutant stream "
        f"(fusion+triage+incremental: {incremental_rate:.1f} iter/s, "
        f"{incremental_rate / TRIAGED_BASELINE:.1f}x the triaged "
        "baseline). concatfuzz/opfuzz mutants stay as easy as their "
        "seeds — opfuzz's extra reference solve per mutant "
        "(differential oracle) is cheap on those."
    )
    for name, (report, _elapsed) in rows.items():
        assert report.iterations == ITERATIONS, name
        assert report.fused > 0, name
    # Neither triage nor incremental sessions may change what the
    # campaign reports as bugs.
    assert len(rows["fusion+triage"][0].bugs) == len(rows["fusion"][0].bugs)
    assert len(rows["fusion+triage+incremental"][0].bugs) == len(
        rows["fusion"][0].bugs
    )
    if smoke():
        # Smoke runs exist to exercise the rows in CI, not to time
        # them; skipping emit keeps the committed artifacts authentic.
        return
    emit("strategy_throughput", "\n".join(lines))
    emit_json(
        "BENCH_strategies",
        {
            "benchmark": "strategy_throughput",
            "iterations": ITERATIONS,
            "seed": SEED,
            "host": platform.node(),
            "git_rev": git_rev(),
            "strategies": {
                name: round(ITERATIONS / elapsed, 2)
                for name, (_report, elapsed) in rows.items()
            },
        },
    )
    # The headline acceptance bars: triaged fusion sustains >= 10x the
    # pre-triage pipeline, and incremental sessions >= 2x the triaged
    # baseline.
    assert triage_rate >= 10 * PRE_TRIAGE_BASELINE, (
        f"triaged fusion throughput regressed: {triage_rate:.2f} iter/s "
        f"< 10x the {PRE_TRIAGE_BASELINE} iter/s pre-triage baseline"
    )
    assert incremental_rate >= 2 * TRIAGED_BASELINE, (
        f"incremental fusion throughput regressed: "
        f"{incremental_rate:.2f} iter/s < 2x the {TRIAGED_BASELINE} "
        f"iter/s triaged baseline"
    )
