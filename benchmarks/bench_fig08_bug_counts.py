"""Figure 8: the bug-hunting campaign (status / type / logic tables).

Runs YinYang against the fault-injected "z3-like" and "cvc4-like"
solvers over all nine corpora and regenerates the paper's three Figure
8 tables side by side with the paper's numbers.

The offline campaign is a compressed version of the paper's four-month
run; the *shape* must hold: more findings in the z3-like solver than
the cvc4-like one, soundness and crash bugs dominating, and the hot
logics being NRA and QF_S.
"""

from _util import emit, once

from repro.campaign import (
    figure8a_rows,
    figure8b_rows,
    figure8c_rows,
    render_table,
    run_campaign,
)
from repro.seeds import build_all_corpora

SCALE = 0.002
ITERATIONS_PER_CELL = 20


def _campaign():
    corpora = build_all_corpora(scale=SCALE, seed=3)
    return run_campaign(corpora, iterations_per_cell=ITERATIONS_PER_CELL, seed=9)


def test_figure8_campaign(benchmark):
    result = once(benchmark, _campaign)

    headers = ["", "Z3", "CVC4", "Z3(paper)", "CVC4(paper)"]
    text = "\n\n".join(
        [
            f"Campaign: {result.summary()}",
            render_table(headers, figure8a_rows(result), "Figure 8a — status of reported bugs"),
            render_table(headers, figure8b_rows(result), "Figure 8b — types of confirmed bugs"),
            render_table(headers, figure8c_rows(result), "Figure 8c — affected logics"),
            "(a longer campaign converges toward the paper counts; see EXPERIMENTS.md)",
        ]
    )
    emit("fig08_bug_counts", text)

    # --- shape assertions -------------------------------------------------
    rows8a = {r[0]: r for r in figure8a_rows(result)}
    z3_reported, cvc4_reported = rows8a["Reported"][1], rows8a["Reported"][2]
    assert z3_reported > 0, "the campaign must find z3-like bugs"
    assert z3_reported > cvc4_reported, "Z3 yields more findings (paper: 44 vs 13)"
    assert rows8a["Confirmed"][1] <= z3_reported

    rows8b = {r[0]: r for r in figure8b_rows(result)}
    assert rows8b["Soundness"][1] >= 1, "soundness bugs are the headline finding"
    assert rows8b["Crash"][1] >= 1

    rows8c = {r[0]: r for r in figure8c_rows(result)}
    hot = rows8c["NRA"][1] + rows8c["QF_S"][1]
    cold = rows8c["QF_NRA"][1] + rows8c["NIA"][1]
    assert hot >= cold, "NRA and QF_S dominate the Z3 findings (paper: 15 + 15)"
