"""RQ1 throughput: fused formulas generated per second.

The paper: "On average, YinYang generates 41.5 test formulas per second
when run in the single-threaded mode." This bench measures our fusion
pipeline's generation throughput (fusing only — solver time excluded,
as in the paper's figure, which measures the generator).
"""

import random

from _util import emit

from repro.core.config import FusionConfig
from repro.core.fusion import fuse
from repro.seeds import build_corpus
from repro.smtlib.ast import fresh_scope

PAPER_THROUGHPUT = 41.5


def test_fusion_throughput(benchmark):
    corpus = build_corpus("QF_LIA", scale=0.004, seed=21)
    scripts = [s.script for s in corpus.seeds]
    rng = random.Random(0)
    config = FusionConfig()

    def fuse_one():
        # Mirror the campaign loop (yinyang._one_iteration): every
        # iteration runs in its own fresh-name scope, so gensyms and
        # intern tables behave exactly as they do under a real run.
        with fresh_scope():
            i = rng.randrange(len(scripts))
            j = rng.randrange(len(scripts))
            return fuse("sat", scripts[i], scripts[j], rng, config)

    # Warmup covers the seed-pair space so the timed rounds measure the
    # steady state — campaigns run hundreds of iterations per cell
    # against the same seeds, amortizing the per-seed caches the same
    # way (the occurrence/rename caches live on the long-lived seed
    # terms, outside the per-iteration scope).
    result = benchmark.pedantic(
        fuse_one, rounds=2500, warmup_rounds=600, iterations=1
    )
    assert result.script.asserts

    per_second = 1.0 / benchmark.stats.stats.mean
    emit(
        "throughput",
        (
            f"RQ1 throughput — fused formulas per second (single-threaded)\n"
            f"ours : {per_second:,.1f}/s\n"
            f"paper: {PAPER_THROUGHPUT}/s (on their 2019 hardware, with file I/O)\n"
        ),
    )
    # Shape: generation is nowhere near the bottleneck (>= paper's rate).
    assert per_second > PAPER_THROUGHPUT


def test_multithreaded_mode_runs(benchmark):
    """The paper's multi-threaded mode: same loop, sharded across threads."""
    from repro.core.config import YinYangConfig
    from repro.core.yinyang import YinYang

    corpus = build_corpus("QF_LIA", scale=0.002, seed=22)

    class NullSolver:
        name = "null"

        def check_script(self, script):
            from repro.solver.result import CheckOutcome, SolverResult

            return CheckOutcome(SolverResult.UNKNOWN)

    tool = YinYang(NullSolver(), YinYangConfig(seed=3))

    def run():
        return tool.test("sat", corpus.sat_seeds, iterations=64, threads=4)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.fused > 0
    assert report.iterations == 64
