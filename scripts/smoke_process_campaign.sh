#!/usr/bin/env bash
# End-to-end smoke test of the sharded execution path: a 20-iteration
# process-mode campaign through the real CLI, journaled, then the
# journal is checked for shape (meta + one entry per cell) and for
# determinism (a serial rerun must produce byte-identical records).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# --deterministic removes every wall-clock dependence (solver
# deadlines, performance classification), so the two journals below
# must match byte-for-byte.
echo "== process-mode campaign (2 workers, 20 iterations/cell) =="
python -m repro.cli campaign \
    --mode process --workers 2 \
    --iterations 20 --scale 0.0015 --seed 1 --deterministic \
    --journal "$workdir/process.jsonl"

echo "== serial rerun for the determinism check =="
python -m repro.cli campaign \
    --iterations 20 --scale 0.0015 --seed 1 --deterministic \
    --journal "$workdir/serial.jsonl" > /dev/null

python - "$workdir/process.jsonl" "$workdir/serial.jsonl" <<'EOF'
import json, sys

def load(path):
    with open(path, encoding="utf-8") as handle:
        return [json.loads(line) for line in handle]

process, serial = load(sys.argv[1]), load(sys.argv[2])
assert process[0]["type"] == "meta", "journal must open with its meta entry"
cells = [e for e in process if e["type"] == "cell"]
assert cells, "campaign journaled no cells"
keys = [(e["solver"], e["family"], e["oracle"]) for e in cells]
assert len(keys) == len(set(keys)), "a cell was journaled twice"
for entry in cells:
    assert entry["report"]["iterations"] == 20
assert process == serial, "process-mode journal differs from serial journal"
print(f"smoke OK: {len(cells)} cells, journals byte-identical across modes")
EOF

if compgen -G "$workdir/process.jsonl.shard-*" > /dev/null; then
    echo "sidecar journals left behind" >&2
    exit 1
fi
