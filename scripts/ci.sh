#!/usr/bin/env bash
# The tier-1 CI gate, runnable locally and in any runner.
#
# Three stages, strictly ordered so the cheapest failures surface first:
#
#   1. AST lint  — term nodes must be built via the interning
#      constructors, and the observability layer must never import
#      random (telemetry cannot be allowed to perturb the campaign's
#      RNG streams).
#   2. Telemetry determinism — journals must stay byte-identical with
#      metrics off, on, or traced, across modes and worker counts.
#   3. Fast lane — the full suite minus the soak/slow markers
#      (see pyproject.toml; run the slow and chaos lanes nightly:
#      `pytest -m slow` / `pytest -m chaos`).
#
# Stages 1 and 2 are subsets of stage 3; running them first just makes
# the common failure modes fail in seconds instead of minutes.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== stage 1/3: AST lint (interning constructors, no RNG in telemetry) =="
python -m pytest tests/test_ast_lint.py \
    "tests/test_observability.py::TestHotPathHygiene" -q

echo "== stage 2/3: telemetry determinism (journal byte-identity) =="
python -m pytest tests/test_parallel_determinism.py -q -m "not slow"

echo "== stage 3/3: fast lane (full suite minus slow/chaos) =="
python -m pytest -m "not slow and not chaos" -q

echo "CI gate passed."
