#!/usr/bin/env bash
# The tier-1 CI gate, runnable locally and in any runner.
#
# Nine stages, strictly ordered so the cheapest failures surface first:
#
#   1. AST lint  — term nodes must be built via the interning
#      constructors, the observability layer must never import random
#      (telemetry cannot be allowed to perturb the campaign's RNG
#      streams), and the campaign core must stay strategy-agnostic (no
#      fusion/concatfuzz imports in yinyang.py).
#   2. Strategy determinism — the default fusion strategy must
#      reproduce the pre-refactor golden journal byte-for-byte, and
#      opfuzz must journal identically across modes/worker counts.
#   3. Telemetry determinism — journals must stay byte-identical with
#      metrics off, on, or traced, across modes and worker counts.
#   4. Triage + session determinism — with the tier policy on, journals
#      must stay byte-identical across worker counts, every definite
#      full-budget verdict must survive tiering (verdict equivalence),
#      and a fault-injected campaign must find the same bugs with
#      triage on and off; incremental sessions must uphold the same
#      three properties versus the cold loop.
#   5. Fast lane — the full suite minus the soak/slow markers
#      (see pyproject.toml; run the slow and chaos lanes nightly:
#      `pytest -m slow` / `pytest -m chaos`).
#   6. Fault tolerance — the supervised-campaign acceptance property:
#      seeded chaos kills of worker processes must leave the merged
#      journal byte-identical to a failure-free deterministic run, and
#      a permanently poisonous iteration must be quarantined instead
#      of aborting the campaign.
#   7. Bench smoke — every benchmark row must *run* (tiny iteration
#      counts, REPRO_BENCH_SMOKE=1: no timing assertions, no result
#      files written), so a broken bench harness fails CI instead of
#      the next full benchmark run.
#   8. Distributed fleet — the tcp transport end-to-end through the
#      real CLI: a two-worker localhost fleet under tiny budgets, plus
#      the fleet chaos soak, must merge to the byte-identical serial
#      journal (the nightly slow lane re-runs the 4-worker shapes).
#   9. QF_BV theory — the pluggable-theory path end-to-end through the
#      real CLI: deterministic bit-vector campaigns (fusion and opfuzz,
#      --triage --incremental) run serially and on a two-worker process
#      pool, and the journals must be byte-identical.
#
# Stages 1-4 are subsets of stage 5; running them first just makes
# the common failure modes fail in seconds instead of minutes.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== stage 1/9: AST lint (interning, no RNG in telemetry, strategy-agnostic core) =="
python -m pytest tests/test_ast_lint.py \
    "tests/test_observability.py::TestHotPathHygiene" -q

echo "== stage 2/9: strategy determinism (golden fusion journal, opfuzz byte-identity) =="
python -m pytest tests/test_strategies.py -q -m "not slow"

echo "== stage 3/9: telemetry determinism (journal byte-identity) =="
python -m pytest tests/test_parallel_determinism.py -q -m "not slow"

echo "== stage 4/9: triage + session determinism (verdict equivalence, bug-finding power) =="
python -m pytest tests/test_triage.py tests/test_session.py -q -m "not slow"

echo "== stage 5/9: fast lane (full suite minus slow/chaos) =="
python -m pytest -m "not slow and not chaos" -q

echo "== stage 6/9: fault tolerance (chaos-kill determinism, poison quarantine) =="
python -m pytest tests/test_supervisor.py -q
python -m pytest tests/test_supervised_campaign.py -q

echo "== stage 7/9: bench smoke (every benchmark row runs; no timing assertions) =="
REPRO_BENCH_SMOKE=1 python -m pytest benchmarks/bench_strategies.py -q

echo "== stage 8/9: distributed fleet (tcp campaign vs serial baseline, chaos soak) =="
python -m pytest tests/test_distributed.py -q -m "not slow"
fleetdir="$(mktemp -d)"
trap 'rm -rf "$fleetdir"' EXIT
python -m repro.cli campaign \
    --mode tcp --workers 2 \
    --iterations 6 --scale 0.0015 --seed 1 --deterministic \
    --journal "$fleetdir/fleet.jsonl"
python -m repro.cli campaign \
    --iterations 6 --scale 0.0015 --seed 1 --deterministic \
    --journal "$fleetdir/serial.jsonl" > /dev/null
cmp "$fleetdir/fleet.jsonl" "$fleetdir/serial.jsonl" \
    || { echo "tcp fleet journal differs from serial journal" >&2; exit 1; }
if compgen -G "$fleetdir/fleet.jsonl.shard-*" > /dev/null; then
    echo "fleet sidecar journals left behind" >&2
    exit 1
fi
echo "fleet smoke OK: tcp journal byte-identical to serial"

echo "== stage 9/9: QF_BV theory (bit-blasting campaign, serial vs process byte-identity) =="
python -m pytest tests/test_theory_registry.py tests/test_bv_properties.py -q
bvdir="$(mktemp -d)"
trap 'rm -rf "$fleetdir" "$bvdir"' EXIT
for strategy in fusion opfuzz; do
    python -m repro.cli campaign \
        --logic QF_BV --strategy "$strategy" --deterministic \
        --triage --incremental \
        --iterations 20 --scale 0.02 --seed 0 \
        --journal "$bvdir/$strategy-serial.jsonl" > /dev/null
    python -m repro.cli campaign \
        --logic QF_BV --strategy "$strategy" --deterministic \
        --triage --incremental \
        --mode process --workers 2 \
        --iterations 20 --scale 0.02 --seed 0 \
        --journal "$bvdir/$strategy-process2.jsonl" > /dev/null
    cmp "$bvdir/$strategy-serial.jsonl" "$bvdir/$strategy-process2.jsonl" \
        || { echo "QF_BV $strategy process journal differs from serial" >&2; exit 1; }
    if compgen -G "$bvdir/$strategy-process2.jsonl.shard-*" > /dev/null; then
        echo "QF_BV $strategy sidecar journals left behind" >&2
        exit 1
    fi
done
echo "QF_BV smoke OK: fusion and opfuzz journals byte-identical across shapes"

echo "CI gate passed."
