#!/usr/bin/env bash
# The tier-1 CI gate, runnable locally and in any runner.
#
# Four stages, strictly ordered so the cheapest failures surface first:
#
#   1. AST lint  — term nodes must be built via the interning
#      constructors, the observability layer must never import random
#      (telemetry cannot be allowed to perturb the campaign's RNG
#      streams), and the campaign core must stay strategy-agnostic (no
#      fusion/concatfuzz imports in yinyang.py).
#   2. Strategy determinism — the default fusion strategy must
#      reproduce the pre-refactor golden journal byte-for-byte, and
#      opfuzz must journal identically across modes/worker counts.
#   3. Telemetry determinism — journals must stay byte-identical with
#      metrics off, on, or traced, across modes and worker counts.
#   4. Fast lane — the full suite minus the soak/slow markers
#      (see pyproject.toml; run the slow and chaos lanes nightly:
#      `pytest -m slow` / `pytest -m chaos`).
#
# Stages 1-3 are subsets of stage 4; running them first just makes
# the common failure modes fail in seconds instead of minutes.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== stage 1/4: AST lint (interning, no RNG in telemetry, strategy-agnostic core) =="
python -m pytest tests/test_ast_lint.py \
    "tests/test_observability.py::TestHotPathHygiene" -q

echo "== stage 2/4: strategy determinism (golden fusion journal, opfuzz byte-identity) =="
python -m pytest tests/test_strategies.py -q -m "not slow"

echo "== stage 3/4: telemetry determinism (journal byte-identity) =="
python -m pytest tests/test_parallel_determinism.py -q -m "not slow"

echo "== stage 4/4: fast lane (full suite minus slow/chaos) =="
python -m pytest -m "not slow and not chaos" -q

echo "CI gate passed."
