"""Extending Semantic Fusion with a custom fusion function.

The paper (Sections 3.3 and 6) notes that "a richer set of fusion and
inversion functions can be designed based on the generic Definitions 1
and 2". This example registers a new Int family

    z = f(x, y) = 2*x + y        r_x = (z - y) div 2,   r_y = z - 2*x

and verifies on the spot that fusion with it preserves satisfiability.

Run:  python examples/custom_fusion_function.py
"""

import random

from repro import ReferenceSolver, parse_script, print_script
from repro.core.config import FusionConfig
from repro.core.fusion import fuse
from repro.core.fusion_functions import (
    FusionInstance,
    FusionScheme,
    all_scheme_names,
    register_scheme,
)
from repro.smtlib import builder as b
from repro.smtlib.sorts import INT


def _instantiate(rng, config):
    return FusionInstance(
        scheme="int-double-plus",
        sort=INT,
        fusion=lambda x, y: b.add(b.mul(2, x), y),
        invert_x=lambda x, y, z: b.idiv(b.sub(z, y), b.lift(2)),
        invert_y=lambda x, y, z: b.sub(z, b.mul(2, x)),
    )


def main():
    if "int-double-plus" not in all_scheme_names():
        register_scheme(FusionScheme("int-double-plus", INT, _instantiate))
    print("registered fusion schemes:", ", ".join(all_scheme_names()))

    phi1 = parse_script(
        "(declare-fun x () Int)(assert (= (* x x) 9))(assert (< x 0))(check-sat)"
    )
    phi2 = parse_script(
        "(declare-fun y () Int)(assert (> (+ y y) 5))(check-sat)"
    )

    # Restrict fusion to the new family only.
    config = FusionConfig(schemes=("int-double-plus",), max_pairs=1)
    solver = ReferenceSolver()
    rng = random.Random(3)

    for trial in range(3):
        result = fuse("sat", phi1, phi2, rng, config)
        verdict = solver.check_script(result.script).result
        print(f"\n--- trial {trial}: solver says {verdict} (oracle sat)")
        print(print_script(result.script))
        assert str(verdict) != "unsat", "a sound solver must never refute SAT fusion"


if __name__ == "__main__":
    main()
