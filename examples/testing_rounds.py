"""The paper's testing-round cadence, simulated end to end.

Section 4.2 (RQ1) describes the campaign protocol: test trunk, report,
wait for fixes, revalidate the previous round's triggering formulas on
the patched build, and start a new round. This example drives
:func:`repro.campaign.rounds.run_fix_rounds`, which mechanizes the
developer side (a "fix" removes the implicated fault from the build),
and prints the round-by-round find counts draining to zero.

Run:  python examples/testing_rounds.py
"""

from repro.campaign.rounds import run_fix_rounds
from repro.faults.catalog import z3_like_catalog
from repro.seeds import build_corpus
from repro.solver.solver import ReferenceSolver, SolverConfig


def main():
    corpus = build_corpus("QF_S", scale=0.002, seed=41)
    print(f"seed corpus: {corpus.counts()[2]} QF_S formulas")

    result = run_fix_rounds(
        ReferenceSolver(SolverConfig.fast()),
        z3_like_catalog(),
        "z3-like",
        oracle="unsat",
        seeds=corpus.unsat_seeds,
        iterations_per_round=25,
        max_rounds=8,
        seed=3,
    )

    print()
    for round_ in result.rounds:
        found = ", ".join(round_.new_fault_ids) or "(nothing new — campaign over)"
        print(
            f"round {round_.index}: {round_.bug_count} bug-triggering formulas, "
            f"new root causes: {found}"
        )
        if round_.revalidation_failures:
            print(f"  !! {round_.revalidation_failures} fixes failed revalidation")

    print(f"\n{result.summary()}")


if __name__ == "__main__":
    main()
