"""Quickstart: Semantic Fusion in a dozen lines.

Reproduces the paper's Figure 1 workflow: two satisfiable formulas are
fused into a satisfiable formula (SAT fusion), two unsatisfiable ones
into an unsatisfiable formula (UNSAT fusion), and the solver's answers
are checked against the constructed oracle.

Run:  python examples/quickstart.py
"""

import random

from repro import ReferenceSolver, parse_script, print_script
from repro.core.fusion import fuse, fused_model
from repro.semantics.evaluator import evaluate_script
from repro.semantics.model import Model

# The paper's Figure 1 seeds: phi1 = x > 0 and x > 1, phi2 = y < 0 and y < 1.
PHI1 = parse_script(
    """
    (declare-fun x () Int)
    (assert (> x 0))
    (assert (> x 1))
    (check-sat)
    """
)
PHI2 = parse_script(
    """
    (declare-fun y () Int)
    (assert (< y 0))
    (assert (< y 1))
    (check-sat)
    """
)

UNSAT1 = parse_script(
    """
    (declare-fun x () Int)
    (assert (> x 0))
    (assert (< x 0))
    (check-sat)
    """
)
UNSAT2 = parse_script(
    """
    (declare-fun y () Int)
    (assert (distinct y y))
    (check-sat)
    """
)


def main():
    solver = ReferenceSolver()
    rng = random.Random(42)

    print("=== SAT fusion (Proposition 1) ===")
    result = fuse("sat", PHI1, PHI2, rng)
    print(print_script(result.script))
    print(f"schemes used: {[t.scheme for t in result.triplets]}")
    outcome = solver.check_script(result.script)
    print(f"solver says: {outcome.result}   (oracle: {result.oracle})")

    # Proposition 1's constructed model: M1 ∪ M2 ∪ {z -> f(x, y)}.
    model = fused_model(result, Model({"x": 2}), Model({"y": -1}))
    print(f"constructed model: {model}")
    print(f"model satisfies fused formula: {evaluate_script(result.script, model)}")

    print("\n=== UNSAT fusion (Proposition 2) ===")
    result = fuse("unsat", UNSAT1, UNSAT2, rng)
    print(print_script(result.script))
    outcome = solver.check_script(result.script)
    print(f"solver says: {outcome.result}   (oracle: {result.oracle})")

    print("\nAny disagreement with the oracle would be a soundness bug.")


if __name__ == "__main__":
    main()
