"""A hardened campaign surviving a misbehaving solver, start to finish.

Long fuzzing campaigns die in boring ways: a solver build hangs, a
spawn fails transiently, an unexpected exception unwinds the loop, or
one broken solver drags the whole run down. This example turns on the
harness's containment layer and drives it with a deliberately sabotaged
solver:

1. :class:`ChaosSolver` injects seeded faults (hangs, crashes, garbage
   verdicts, wrong answers, raised exceptions) around a real solver;
2. :class:`ResiliencePolicy` puts a watchdog deadline on every check,
   retries transient failures, contains unexpected exceptions as
   structured bug records, and quarantines the solver once it fails
   too many checks in a row;
3. the campaign journals every completed cell to disk, so an
   interrupted run resumes where it stopped instead of starting over.

Run:  python examples/robust_campaign.py
"""

import tempfile
from pathlib import Path

from repro.campaign.runner import run_campaign
from repro.robustness import ChaosSolver, ResiliencePolicy
from repro.seeds import build_corpus
from repro.solver.solver import ReferenceSolver, SolverConfig


def main():
    corpus = build_corpus("QF_LIA", scale=0.002, seed=11)
    unsat_count, sat_count, _ = corpus.counts()
    print(f"seed corpus QF_LIA: {sat_count} sat / {unsat_count} unsat")

    # A trustworthy build, and the same build wrapped in seeded sabotage.
    steady = ReferenceSolver(SolverConfig.fast())
    chaotic = ChaosSolver(
        ReferenceSolver(SolverConfig.fast()),
        seed=9,
        p_hang=0.08,
        p_crash=0.15,
        p_garbage=0.05,
        p_wrong=0.05,
        p_exception=0.10,
        hang_seconds=3.0,
    )

    policy = ResiliencePolicy(
        check_timeout=1.0,     # watchdog: abandon checks stuck past 1s
        retries=1,             # transient spawn failures get one retry
        quarantine_after=6,    # breaker: bench the solver after 6 straight failures
    )

    with tempfile.TemporaryDirectory() as scratch:
        journal = Path(scratch) / "campaign.jsonl"
        print(f"\nrunning a journaled campaign against {chaotic.name} ...")
        result = run_campaign(
            {"QF_LIA": corpus},
            solvers=[chaotic, steady],
            iterations_per_cell=12,
            seed=4,
            policy=policy,
            journal=journal,
        )
        print(result.summary())

        counters = result.resilience_counters()
        print("\nwhat the guard absorbed:")
        print(f"  retries          : {counters['retries']}")
        print(f"  watchdog timeouts: {counters['timeouts']}")
        print(f"  contained errors : {counters['contained_errors']}")
        print(f"  quarantine skips : {counters['quarantine_skips']}")
        if counters["quarantined"]:
            print(f"  quarantined      : {', '.join(counters['quarantined'])}")

        print("\nfaults actually injected by the chaos layer:")
        for kind, count in sorted(chaotic.injected.items()):
            if count:
                print(f"  {kind:9s}: {count}")

        # The wrong answers surface as ordinary soundness reports — a
        # triager would cross-check and dismiss them; the point here is
        # that the campaign *finished* and recorded them instead of dying.
        harness_bugs = [r for r in result.records if r.kind == "harness"]
        print(f"\nbug records: {len(result.records)} total, "
              f"{len(harness_bugs)} contained harness errors")

        # The journal makes the campaign restartable: running it again
        # in resume mode finds every cell already recorded on disk and
        # re-runs nothing.
        lines = journal.read_text().count("\n")
        print(f"\njournal holds {lines} entries; resuming from it ...")
        resumed = run_campaign(
            {"QF_LIA": corpus},
            solvers=[chaotic, steady],
            iterations_per_cell=12,
            seed=4,
            policy=policy,
            journal=journal,
            resume=True,
        )
        same = len(resumed.records) == len(result.records)
        print(f"resume replayed {len(resumed.reports)} cells from the journal "
              f"(records identical: {same})")


if __name__ == "__main__":
    main()
