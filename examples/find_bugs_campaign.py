"""A miniature bug-hunting campaign, start to finish.

Mirrors the paper's workflow (Section 4): generate a labeled QF_S seed
corpus, run the YinYang loop (Algorithm 1) against a buggy solver (our
"z3-like" build with injected defects), then reduce the first
bug-triggering formula with the ddmin-based reducer — the offline
stand-in for C-Reduce plus the pretty printer.

Run:  python examples/find_bugs_campaign.py
"""

from repro.cli import make_solver
from repro.core.config import YinYangConfig
from repro.solver.solver import ReferenceSolver, SolverConfig
from repro.core.yinyang import YinYang
from repro.reduce import reduce_script
from repro.seeds import build_corpus
from repro.smtlib.ast import term_size
from repro.smtlib.printer import print_script
from repro.solver.result import SolverCrash, SolverResult


def main():
    corpus = build_corpus("QF_S", scale=0.002, seed=7)
    unsat_count, sat_count, total = corpus.counts()
    print(f"seed corpus QF_S: {sat_count} sat / {unsat_count} unsat")

    solver = make_solver("z3-like")
    tool = YinYang(solver, YinYangConfig(seed=1), performance_threshold=0.3)

    print("\nrunning Algorithm 1 (unsat fusion, 40 iterations)...")
    report = tool.test("unsat", corpus.unsat_seeds, iterations=40)
    print(report.summary())
    print(f"throughput: {report.throughput:.1f} fused formulas / second")

    soundness = report.incorrects
    if not soundness:
        print("no soundness bug this round; try more iterations")
        return

    bug = soundness[0]
    print(f"\nfirst soundness bug: {bug}")
    print(f"triggering formula has {sum(term_size(t) for t in bug.script.asserts)} nodes")

    # Reduction predicate. Saying "the buggy solver answers sat" is not
    # enough — reduction could remove the very asserts that made the
    # formula unsat, leaving a formula that is *correctly* sat. As in
    # the paper's practice (cross-checking against another solver while
    # reducing), the predicate also consults a trusted build: keep the
    # candidate only if the buggy solver says sat while the trusted one
    # does NOT (unsat, or unknown on hard intermediates).
    trusted_config = SolverConfig.fast()
    trusted_config.timeout_seconds = 2.0
    trusted = ReferenceSolver(trusted_config)

    def still_buggy(script):
        try:
            outcome = solver.check_script(script)
        except SolverCrash:
            return False
        if outcome.result is not SolverResult.SAT:
            return False
        return trusted.check_script(script).result is not SolverResult.SAT

    reduced = reduce_script(bug.script, still_buggy)
    print(f"\nreduced to {sum(term_size(t) for t in reduced.asserts)} nodes:")
    print(print_script(reduced))


if __name__ == "__main__":
    main()
