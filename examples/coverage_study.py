"""A miniature RQ3/RQ4 coverage study.

Measures line/function/branch probe coverage of the reference solver
under three workloads — the plain seed corpus (Benchmark), ConcatFuzz
(concatenation only), and YinYang (full Semantic Fusion) — and prints a
Figure 12-style comparison. The expected shape, as in the paper:
YinYang >= ConcatFuzz >= Benchmark on every metric.

Run:  python examples/coverage_study.py
"""

from repro.campaign.coverage_study import coverage_cell, figure12_averages
from repro.seeds import build_corpus
from repro.solver.solver import ReferenceSolver, SolverConfig


def main():
    solver = ReferenceSolver(SolverConfig.fast())
    cells = []
    for family in ("QF_LIA", "QF_S"):
        corpus = build_corpus(family, scale=0.002, seed=11)
        for oracle in ("sat", "unsat"):
            if not corpus.by_oracle(oracle):
                continue
            print(f"measuring {family}/{oracle} ...")
            cells.append(
                coverage_cell(
                    solver, corpus, oracle, fuzz_budget=15, with_concatfuzz=True
                )
            )

    benchmark, concatfuzz, yinyang = figure12_averages(cells)
    print("\naverage coverage over all cells (percent of probes hit):")
    print(f"  {'':12s} {'line':>6s} {'func':>6s} {'branch':>7s}")
    for report in (benchmark, concatfuzz, yinyang):
        print(
            f"  {report.label:12s} {report.line:6.1f} {report.function:6.1f} "
            f"{report.branch:7.1f}"
        )

    assert yinyang.dominates(benchmark), "YinYang must dominate the benchmark"
    print("\nYinYang dominates Benchmark on every metric — the RQ3 result.")
    if yinyang.dominates(concatfuzz):
        print("YinYang also dominates ConcatFuzz — the RQ4 result.")


if __name__ == "__main__":
    main()
